package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
)

// driveBoth replays the same access stream through two machines, one using
// the general Fetch/Data paths and one using the precomputed fast paths,
// and asserts identical counters after every step.
func driveBoth(t *testing.T, seed uint64, physical bool) {
	t.Helper()
	ref := New(DefaultConfig())
	fast := New(DefaultConfig())
	if physical {
		ref.SetPhysicalSeed(seed)
		fast.SetPhysicalSeed(seed)
	}
	r := rng.NewMarsaglia(seed)

	// Address pools that exercise aliasing: a few code regions (some above
	// 4 GiB), data spread over many pages, and line-straddling offsets.
	bases := []uint64{0x400000, 0x601000, 0x7f3200000000, 0x12345000}
	for step := 0; step < 20000; step++ {
		switch r.Uint64n(3) {
		case 0: // fetch
			a := mem.Addr(bases[r.Uint64n(uint64(len(bases)))] + r.Uint64n(1<<14))
			size := 1 + r.Uint64n(200)
			ref.Fetch(a, size)
			fast.FetchPre(fast.PrepareFetch(a, size, nil))
		case 1: // aligned-ish data
			a := mem.Addr(bases[r.Uint64n(uint64(len(bases)))] + r.Uint64n(1<<16)&^7)
			ref.Data(a, 8)
			fast.Data8(a)
		case 2: // arbitrary (possibly line-straddling) data
			a := mem.Addr(bases[r.Uint64n(uint64(len(bases)))] + r.Uint64n(1<<16))
			ref.Data(a, 8)
			fast.Data8(a)
		}
		if ref.Snapshot() != fast.Snapshot() {
			t.Fatalf("seed %d step %d: counters diverged\nref:\n%s\nfast:\n%s",
				seed, step, ref.Snapshot(), fast.Snapshot())
		}
	}
	// Cache state (not just counters) must match: probe a sample of lines.
	for i := 0; i < 2000; i++ {
		a := mem.Addr(bases[r.Uint64n(uint64(len(bases)))] + r.Uint64n(1<<16))
		for _, pair := range [][2]*Cache{{ref.L1I, fast.L1I}, {ref.L1D, fast.L1D}, {ref.TLB, fast.TLB}} {
			if pair[0].Probe(a) != pair[1].Probe(a) {
				t.Fatalf("seed %d: residency of %#x diverged in %s", seed, a, pair[0].cfg.Name)
			}
		}
	}
}

func TestFastPathsMatchGeneralPaths(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 2013} {
		driveBoth(t, seed, false)
		driveBoth(t, seed, true)
	}
}

// TestPrepareFetchSpansMatchFetch checks the line-splitting itself: every
// span Fetch would walk appears as exactly that PreLine sequence.
func TestPrepareFetchSpansMatchFetch(t *testing.T) {
	m := New(DefaultConfig())
	line := m.L1I.LineSize()
	for _, tc := range []struct {
		a    uint64
		size uint64
		want int
	}{
		{0x400000, 1, 1},
		{0x400000, 64, 1},
		{0x400000, 65, 2},
		{0x40003f, 2, 2},
		{0x400001, 200, 4},
	} {
		got := m.PrepareFetch(mem.Addr(tc.a), tc.size, nil)
		if len(got) != tc.want {
			t.Fatalf("PrepareFetch(%#x, %d): %d lines, want %d", tc.a, tc.size, len(got), tc.want)
		}
		for i, p := range got {
			want := mem.Addr((tc.a &^ (line - 1)) + uint64(i)*line)
			if p.Addr != want {
				t.Fatalf("PrepareFetch(%#x, %d): line %d at %#x, want %#x", tc.a, tc.size, i, p.Addr, want)
			}
		}
	}
}
