package spec

import (
	"repro/internal/ir"
)

// Benchmark is one synthetic SPEC CPU2006 stand-in.
type Benchmark struct {
	// Name matches the paper's benchmark (astar, bzip2, ...).
	Name string
	// Lang records the original benchmark's language (c or fortran); kept
	// for reporting parity with the paper's tables.
	Lang string
	// Notes documents which structural traits of the original this
	// synthetic encodes.
	Notes string
	// Build constructs the benchmark at the given scale (1.0 is the full
	// evaluation size; tests use smaller scales). Every call builds a
	// fresh module.
	Build func(scale float64) *ir.Module
}

// Suite returns the 18 benchmarks in the paper's order.
func Suite() []Benchmark {
	return []Benchmark{
		astar(), bzip2(), cactusADM(), gcc(), gobmk(), gromacs(),
		h264ref(), hmmer(), lbm(), libquantum(), mcf(), milc(),
		namd(), perlbench(), sjeng(), sphinx3(), wrf(), zeusmp(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// n scales an iteration count, keeping at least 1.
func n(scale float64, base int64) int64 {
	v := int64(scale * float64(base))
	if v < 1 {
		return 1
	}
	return v
}

func astar() Benchmark {
	return Benchmark{
		Name: "astar", Lang: "c",
		Notes: "path search: two hot branchy kernels plus a node ring; few hot functions, so one-time layout luck is nearly binary",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("astar")
			maze := addBranchMaze(mb, "search", 5, 6)
			build, chase := addPointerChase(mb, "graph")
			h := addHashChain(mb, "cost", 3)
			main := mb.Func("main", 0)
			ring := main.Call(build, main.ConstI(n(scale, 2000)))
			acc := main.Call(maze, main.ConstI(11), main.ConstI(n(scale, 1500)))
			acc2 := main.Call(chase, ring, main.ConstI(n(scale, 8000)))
			acc3 := main.Call(h[0], main.Call(h[1], main.Call(h[2], acc)))
			main.Sink(main.Add(acc, main.Add(acc2, acc3)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func bzip2() Benchmark {
	return Benchmark{
		Name: "bzip2", Lang: "c",
		Notes: "block compression: global buffer sweeps with data-dependent strides and a hash pipeline",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("bzip2")
			buf := mb.Global("block", 128<<10)
			sweep := addArraySweep(mb, "bwt", buf, (128<<10)/8, 1)
			sweep2 := addArraySweep(mb, "mtf", buf, (128<<10)/8, 77)
			h := addHashChain(mb, "crc", 6)
			disp := addDispatch(mb, "huff", h)
			main := mb.Func("main", 0)
			a := main.Call(sweep, main.ConstI(n(scale, 9000)))
			b := main.Call(sweep2, main.ConstI(n(scale, 9000)))
			c := main.Call(disp, main.ConstI(5), main.ConstI(n(scale, 5000)))
			main.Sink(main.Add(a, main.Add(b, c)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func cactusADM() Benchmark {
	return Benchmark{
		Name: "cactusADM", Lang: "fortran",
		Notes: "numerical relativity: several multi-megabyte grids allocated once at startup (beyond the shuffling layer's reach) dominate runtime; power-of-two size classes waste heap",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("cactusADM")
			stencil := addInterleavedStencil(mb, "adm_step", 12)
			main := mb.Func("main", 0)
			// Many 40 KiB grids, allocated once at startup: each rounds up
			// to a 64 KiB size class under STABILIZER's power-of-two base
			// (the waste the paper blames for cactusADM's overhead), and
			// none is ever freed, so re-randomization cannot touch them —
			// their placement is one draw of layout luck per run.
			const grids = 48
			const gridWords = 5000 // ~40 KiB per grid (not a page multiple, like real malloc)
			table := main.Alloc(grids * 8)
			main.LoopN(grids, func(j ir.Reg) {
				p := main.Alloc(gridWords * 8)
				main.LoopN(gridWords, func(i ir.Reg) {
					v := main.FAdd(main.ConstF(1.0), main.FMul(main.I2F(i), main.ConstF(1e-6)))
					main.StoreHF(p, 0, i, v)
				})
				main.StoreHF(p, 8*(gridWords-1), ir.NoReg, main.ConstF(0.5))
				main.StoreH(table, 0, j, p)
			})
			sum := main.ConstI(0)
			main.LoopN(n(scale, 9), func(round ir.Reg) {
				main.LoopN(4, func(w ir.Reg) {
					base := main.Mul(w, main.ConstI(12))
					d := main.Call(stencil, table, base, main.ConstI(gridWords), main.ConstI(2200))
					main.MovTo(sum, main.Add(sum, d))
				})
			})
			main.Sink(sum)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func gcc() Benchmark {
	return Benchmark{
		Name: "gcc", Lang: "c",
		Notes: "compiler: ~160 functions (many pad tables under STABILIZER, §5.2), an interpreter-style dispatcher, deep stack frames, allocation churn",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("gcc")
			funcs := addHashChain(mb, "pass", 160)
			disp := addDispatch(mb, "fold", funcs[:12])
			disp2 := addDispatch(mb, "expand", funcs[12:24])
			frame := addStackHeavy(mb, "parse", 192)
			churn := addHeapChurn(mb, "tree_alloc", []int64{24, 48, 96})
			main := mb.Func("main", 0)
			acc := main.Call(disp, main.ConstI(3), main.ConstI(n(scale, 3000)))
			acc2 := main.Call(disp2, main.ConstI(17), main.ConstI(n(scale, 3000)))
			sum := main.Add(acc, acc2)
			main.LoopN(n(scale, 300), func(i ir.Reg) {
				main.MovTo(sum, main.Add(sum, main.Call(frame, i)))
				// Touch the long tail of functions so they all relocate.
				for k := 24; k < len(funcs); k += 17 {
					main.MovTo(sum, main.Xor(sum, main.Call(funcs[k], i)))
				}
			})
			ch := main.Call(churn, main.ConstI(7), main.ConstI(n(scale, 2500)))
			main.Sink(main.Add(sum, ch))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func gobmk() Benchmark {
	return Benchmark{
		Name: "gobmk", Lang: "c",
		Notes: "go engine: many functions, deep data-dependent branch trees (predictor-bound), moderate frames",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("gobmk")
			funcs := addHashChain(mb, "pattern", 110)
			maze := addBranchMaze(mb, "readladder", 7, 5)
			disp := addDispatch(mb, "owl", funcs[:10])
			main := mb.Func("main", 0)
			a := main.Call(maze, main.ConstI(99), main.ConstI(n(scale, 1100)))
			b := main.Call(disp, main.ConstI(5), main.ConstI(n(scale, 3500)))
			sum := main.Add(a, b)
			main.LoopN(n(scale, 500), func(i ir.Reg) {
				for k := 10; k < len(funcs); k += 23 {
					main.MovTo(sum, main.Xor(sum, main.Call(funcs[k], main.Add(i, sum))))
				}
			})
			main.Sink(sum)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func gromacs() Benchmark {
	return Benchmark{
		Name: "gromacs", Lang: "fortran",
		Notes: "molecular dynamics: one dominant FP inner loop plus a small matrix kernel; hot-code luck is concentrated",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("gromacs")
			force := addFPKernel(mb, "nonbonded", false)
			cutoff := addBranchMaze(mb, "cutoff", 7, 4)
			mm := addMatMulFP(mb, "box", 10)
			main := mb.Func("main", 0)
			arr := main.Alloc(4096 * 8)
			main.StoreHF(arr, 0, ir.NoReg, main.ConstF(1.5))
			main.LoopN(4095, func(i ir.Reg) {
				v := main.LoadHF(arr, 0, i)
				main.StoreHF(arr, 8, i, main.FMul(v, main.ConstF(0.99997)))
			})
			d := main.Call(force, arr, main.ConstI(4096), main.ConstI(n(scale, 27000)))
			mat := main.Alloc(3 * 10 * 10 * 8)
			main.LoopN(200, func(i ir.Reg) {
				main.StoreHF(mat, 0, i, main.FAdd(main.ConstF(0.25), main.I2F(i)))
			})
			d2 := main.Call(mm, mat)
			d3 := main.Call(cutoff, main.ConstI(5), main.ConstI(n(scale, 900)))
			main.Sink(main.Add(d, main.Add(d2, d3)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func h264ref() Benchmark {
	return Benchmark{
		Name: "h264ref", Lang: "c",
		Notes: "video encoder: motion-search branch maze over global frame buffers; two hot kernels",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("h264ref")
			frame := mb.Global("frame", 64<<10)
			sweep := addArraySweep(mb, "sad", frame, (64<<10)/8, 16)
			maze := addBranchMaze(mb, "mode_decide", 12, 3)
			main := mb.Func("main", 0)
			a := main.Call(sweep, main.ConstI(n(scale, 7000)))
			b := main.Call(maze, main.ConstI(31), main.ConstI(n(scale, 2500)))
			main.Sink(main.Add(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func hmmer() Benchmark {
	return Benchmark{
		Name: "hmmer", Lang: "c",
		Notes: "profile HMM search: alignment-sensitive FP recurrences (§5.1's anomaly) over a dynamic-programming band",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("hmmer")
			viterbi := addFPKernel(mb, "viterbi", true) // misaligned FP trait
			h := addHashChain(mb, "trace", 4)
			main := mb.Func("main", 0)
			band := main.Alloc(8192 * 8)
			main.LoopN(8192, func(i ir.Reg) {
				main.StoreHF(band, 0, i, main.FAdd(main.ConstF(0.125), main.I2F(i)))
			})
			d := main.Call(viterbi, band, main.ConstI(8192), main.ConstI(n(scale, 30000)))
			t := main.Call(h[0], main.Call(h[3], d))
			main.Sink(main.Add(d, t))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func lbm() Benchmark {
	return Benchmark{
		Name: "lbm", Lang: "c",
		Notes: "lattice Boltzmann: one perfectly regular sweep over a large global grid; the least layout-sensitive shape",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("lbm")
			grid := mb.Global("grid", 512<<10)
			sweep := addArraySweep(mb, "stream", grid, (512<<10)/8, 1)
			collide := addFPKernel(mb, "collide", false)
			main := mb.Func("main", 0)
			a := main.Call(sweep, main.ConstI(n(scale, 14000)))
			cells := main.Alloc(2048 * 8)
			main.StoreHF(cells, 0, ir.NoReg, main.ConstF(2.0))
			b := main.Call(collide, cells, main.ConstI(2048), main.ConstI(n(scale, 12000)))
			main.Sink(a)
			main.Sink(b)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func libquantum() Benchmark {
	return Benchmark{
		Name: "libquantum", Lang: "c",
		Notes: "quantum simulation: tight gate loops over one register array with power-of-two strides",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("libquantum")
			reg := mb.Global("qreg", 64<<10)
			gate1 := addArraySweep(mb, "toffoli", reg, (64<<10)/8, 1)
			gate2 := addArraySweep(mb, "cnot", reg, (64<<10)/8, 64)
			main := mb.Func("main", 0)
			a := main.Call(gate1, main.ConstI(n(scale, 11000)))
			b := main.Call(gate2, main.ConstI(n(scale, 11000)))
			main.Sink(main.Xor(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func mcf() Benchmark {
	return Benchmark{
		Name: "mcf", Lang: "c",
		Notes: "network simplex: a large pointer-chased node ring with churn; dominated by memory latency, so heap placement decides everything",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("mcf")
			build, chase := addPointerChase(mb, "arcs")
			churn := addHeapChurn(mb, "basket", []int64{32, 64})
			main := mb.Func("main", 0)
			ring := main.Call(build, main.ConstI(n(scale, 6000)))
			a := main.Call(chase, ring, main.ConstI(n(scale, 35000)))
			b := main.Call(churn, main.ConstI(3), main.ConstI(n(scale, 1500)))
			main.Sink(main.Add(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func milc() Benchmark {
	return Benchmark{
		Name: "milc", Lang: "c",
		Notes: "lattice QCD: strided FP sweeps over global field arrays",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("milc")
			field := mb.Global("su3", 128<<10)
			sweep := addArraySweep(mb, "mult_su3", field, (128<<10)/8, 24)
			fp := addFPKernel(mb, "project", false)
			main := mb.Func("main", 0)
			a := main.Call(sweep, main.ConstI(n(scale, 7000)))
			v := main.Alloc(3072 * 8)
			main.StoreHF(v, 0, ir.NoReg, main.ConstF(0.75))
			b := main.Call(fp, v, main.ConstI(3072), main.ConstI(n(scale, 15000)))
			main.Sink(main.Add(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func namd() Benchmark {
	return Benchmark{
		Name: "namd", Lang: "fortran",
		Notes: "molecular dynamics: dense FP compute (matrix kernels) with little memory pressure",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("namd")
			mm := addMatMulFP(mb, "patch", 14)
			fp := addFPKernel(mb, "angles", false)
			main := mb.Func("main", 0)
			mat := main.Alloc(3 * 14 * 14 * 8)
			main.LoopN(2*14*14, func(i ir.Reg) {
				main.StoreHF(mat, 0, i, main.FAdd(main.ConstF(0.01), main.I2F(i)))
			})
			sum := main.ConstI(0)
			main.LoopN(n(scale, 12), func(i ir.Reg) {
				main.MovTo(sum, main.Add(sum, main.Call(mm, mat)))
			})
			arr := main.Alloc(1024 * 8)
			main.StoreHF(arr, 0, ir.NoReg, main.ConstF(1.0))
			b := main.Call(fp, arr, main.ConstI(1024), main.ConstI(n(scale, 10000)))
			main.Sink(main.Add(sum, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func perlbench() Benchmark {
	return Benchmark{
		Name: "perlbench", Lang: "c",
		Notes: "interpreter: ~200 opcode handlers dispatched data-dependently, heavy stack frames, string-ish heap churn — the worst case for stack randomization (§5.2)",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("perlbench")
			ops := addHashChain(mb, "pp", 200)
			magic := addBranchMaze(mb, "magic_check", 7, 4)
			disp := addDispatch(mb, "runops", ops[:14])
			frame := addStackHeavy(mb, "sv_stack", 256)
			churn := addHeapChurn(mb, "sv_alloc", []int64{16, 40, 80, 160})
			main := mb.Func("main", 0)
			a := main.Call(disp, main.ConstI(1), main.ConstI(n(scale, 4000)))
			sum := main.Mov(a)
			main.LoopN(n(scale, 250), func(i ir.Reg) {
				main.MovTo(sum, main.Add(sum, main.Call(frame, i)))
				for k := 14; k < len(ops); k += 31 {
					main.MovTo(sum, main.Xor(sum, main.Call(ops[k], i)))
				}
			})
			b := main.Call(churn, main.ConstI(13), main.ConstI(n(scale, 2000)))
			mg := main.Call(magic, main.ConstI(21), main.ConstI(n(scale, 1000)))
			main.Sink(main.Add(sum, main.Add(b, mg)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func sjeng() Benchmark {
	return Benchmark{
		Name: "sjeng", Lang: "c",
		Notes: "chess search: deep branch trees, small frames, a transposition-table global",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("sjeng")
			tt := mb.Global("ttable", 64<<10)
			maze := addBranchMaze(mb, "alphabeta", 8, 8)
			sweep := addArraySweep(mb, "probe", tt, (64<<10)/8, 4099)
			main := mb.Func("main", 0)
			a := main.Call(maze, main.ConstI(77), main.ConstI(n(scale, 800)))
			b := main.Call(sweep, main.ConstI(n(scale, 5000)))
			main.Sink(main.Add(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func sphinx3() Benchmark {
	return Benchmark{
		Name: "sphinx3", Lang: "c",
		Notes: "speech recognition: Gaussian-mixture FP scoring dispatched over senone handlers",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("sphinx3")
			score := addFPKernel(mb, "gmm", false)
			h := addHashChain(mb, "senone", 30)
			disp := addDispatch(mb, "frame", h[:8])
			main := mb.Func("main", 0)
			feat := main.Alloc(2048 * 8)
			main.StoreHF(feat, 0, ir.NoReg, main.ConstF(0.33))
			a := main.Call(score, feat, main.ConstI(2048), main.ConstI(n(scale, 20000)))
			b := main.Call(disp, main.ConstI(9), main.ConstI(n(scale, 4000)))
			main.Sink(main.Add(a, b))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func wrf() Benchmark {
	return Benchmark{
		Name: "wrf", Lang: "fortran",
		Notes: "weather model: FP sweeps over many global field arrays plus physics branch logic",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("wrf")
			u := mb.Global("u_field", 48<<10)
			v := mb.Global("v_field", 48<<10)
			sweepU := addArraySweep(mb, "advect_u", u, (48<<10)/8, 3)
			sweepV := addArraySweep(mb, "advect_v", v, (48<<10)/8, 5)
			maze := addBranchMaze(mb, "microphysics", 4, 6)
			fp := addFPKernel(mb, "radiation", false)
			main := mb.Func("main", 0)
			a := main.Call(sweepU, main.ConstI(n(scale, 6000)))
			b := main.Call(sweepV, main.ConstI(n(scale, 6000)))
			c := main.Call(maze, main.ConstI(3), main.ConstI(n(scale, 700)))
			col := main.Alloc(1536 * 8)
			main.StoreHF(col, 0, ir.NoReg, main.ConstF(288.15))
			d := main.Call(fp, col, main.ConstI(1536), main.ConstI(n(scale, 10000)))
			main.Sink(main.Add(main.Add(a, b), main.Add(c, d)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func zeusmp() Benchmark {
	return Benchmark{
		Name: "zeusmp", Lang: "fortran",
		Notes: "magnetohydrodynamics: stencil sweeps over several global grids",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("zeusmp")
			d := mb.Global("density", 96<<10)
			e := mb.Global("energy", 96<<10)
			sweepD := addArraySweep(mb, "hsmoc_d", d, (96<<10)/8, 1)
			sweepE := addArraySweep(mb, "hsmoc_e", e, (96<<10)/8, 9)
			fp := addFPKernel(mb, "lorentz", false)
			main := mb.Func("main", 0)
			a := main.Call(sweepD, main.ConstI(n(scale, 7500)))
			b := main.Call(sweepE, main.ConstI(n(scale, 7500)))
			grid := main.Alloc(2560 * 8)
			main.StoreHF(grid, 0, ir.NoReg, main.ConstF(1.0))
			c := main.Call(fp, grid, main.ConstI(2560), main.ConstI(n(scale, 10000)))
			main.Sink(a)
			main.Sink(b)
			main.Sink(c)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

// suiteNames is exported through Names for harness convenience.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = b.Name
	}
	return out
}
