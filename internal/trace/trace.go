// Package trace samples machine counters over fixed cycle windows while a
// program runs, producing the time series behind phase analysis.
//
// §4 of the paper argues that re-randomization normalizes execution times
// even for "programs with phase behavior", by decomposing them into
// subprograms that are each normalized. The sampler makes phases observable
// (IPC and miss-rate series), and the phases experiment in
// internal/experiment tests the §4 claim directly.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Window is one sampling interval's counter deltas.
type Window struct {
	StartCycle uint64
	machine.Counters
}

// Series is the recorded time series.
type Series struct {
	WindowCycles uint64
	Windows      []Window
}

// Sampler wraps a Runtime and records counter windows as the program runs.
// It forwards every Runtime call to the inner runtime unchanged, so it can
// wrap the native runtime or the STABILIZER runtime alike.
type Sampler struct {
	inner  interp.Runtime
	mach   *machine.Machine
	window uint64
	next   uint64
	last   machine.Counters
	series Series
}

// New wraps inner, sampling every windowCycles cycles.
func New(inner interp.Runtime, mach *machine.Machine, windowCycles uint64) *Sampler {
	if windowCycles == 0 {
		windowCycles = 50_000
	}
	return &Sampler{
		inner:  inner,
		mach:   mach,
		window: windowCycles,
		next:   mach.Cycles + windowCycles,
		last:   mach.Snapshot(),
		series: Series{WindowCycles: windowCycles},
	}
}

// Series returns the recorded windows (call after the run).
func (s *Sampler) Series() *Series {
	// Flush the partial final window.
	s.capture()
	return &s.series
}

func (s *Sampler) capture() {
	cur := s.mach.Snapshot()
	delta := cur.Sub(s.last)
	if delta.Cycles == 0 {
		return
	}
	s.series.Windows = append(s.series.Windows, Window{
		StartCycle: s.last.Cycles,
		Counters:   delta,
	})
	s.last = cur
}

// Runtime interface delegation.

func (s *Sampler) CodeBase(fn int) mem.Addr            { return s.inner.CodeBase(fn) }
func (s *Sampler) BlockOffsets(fn int) []uint64        { return s.inner.BlockOffsets(fn) }
func (s *Sampler) GlobalAddr(g int) mem.Addr           { return s.inner.GlobalAddr(g) }
func (s *Sampler) StackBase() mem.Addr                 { return s.inner.StackBase() }
func (s *Sampler) BeforeCall(fn int) uint64            { return s.inner.BeforeCall(fn) }
func (s *Sampler) Alloc(size uint64) (mem.Addr, error) { return s.inner.Alloc(size) }
func (s *Sampler) Free(addr mem.Addr) error            { return s.inner.Free(addr) }
func (s *Sampler) RelocCall(c, f int) (mem.Addr, bool) { return s.inner.RelocCall(c, f) }
func (s *Sampler) RelocGlobal(c, g int) (mem.Addr, bool) {
	return s.inner.RelocGlobal(c, g)
}

// Tick samples when the window elapses, then forwards.
func (s *Sampler) Tick(stack func() []mem.Addr) {
	if s.mach.Cycles >= s.next {
		s.capture()
		s.next = s.mach.Cycles + s.window
	}
	s.inner.Tick(stack)
}

// IPCSeries returns instructions-per-cycle per window.
func (s *Series) IPCSeries() []float64 {
	out := make([]float64, len(s.Windows))
	for i, w := range s.Windows {
		out[i] = w.IPC()
	}
	return out
}

// MissSeries returns (L1D+L2 misses)/instruction per window.
func (s *Series) MissSeries() []float64 {
	out := make([]float64, len(s.Windows))
	for i, w := range s.Windows {
		if w.Instructions > 0 {
			out[i] = float64(w.L1DMisses+w.L2Misses) / float64(w.Instructions)
		}
	}
	return out
}

// PhaseCount estimates how many distinct phases the series contains: runs of
// windows whose IPC stays within a tolerance band count as one phase.
func (s *Series) PhaseCount(tolerance float64) int {
	ipc := s.IPCSeries()
	if len(ipc) == 0 {
		return 0
	}
	phases := 1
	ref := ipc[0]
	for _, v := range ipc[1:] {
		if v > ref*(1+tolerance) || v < ref*(1-tolerance) {
			phases++
			ref = v
		}
	}
	return phases
}

// sparkRunes are the eight-level bars of the sparkline rendering.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series of values as a compact unicode strip.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// String renders the series as IPC and miss-rate sparklines plus a summary.
func (s *Series) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d windows of %d cycles\n", len(s.Windows), s.WindowCycles)
	fmt.Fprintf(&sb, "IPC        %s\n", Sparkline(s.IPCSeries()))
	fmt.Fprintf(&sb, "miss rate  %s\n", Sparkline(s.MissSeries()))
	fmt.Fprintf(&sb, "phases (10%% IPC tolerance): %d\n", s.PhaseCount(0.10))
	return sb.String()
}
