package compiler

import "repro/internal/ir"

// Inline replaces calls to small functions with their bodies. Threshold is
// the callee size in modeled code bytes below which inlining happens;
// MaxGrowth bounds the caller's growth factor. The -O2 pipeline uses a small
// threshold; -O3 "increases the amount of inlining" (§6) with a larger one —
// which also grows code footprint, one of the reasons -O3's measured benefit
// can be noise.
type Inline struct {
	Threshold uint64
	MaxGrowth uint64 // max caller size in bytes after inlining
}

// Name implements Pass.
func (Inline) Name() string { return "inline" }

// Run implements Pass.
func (p Inline) Run(m *ir.Module) {
	if p.Threshold == 0 {
		p.Threshold = 64
	}
	if p.MaxGrowth == 0 {
		p.MaxGrowth = 4096
	}
	ir.ComputeSizes(m)
	reach := callReachability(m)
	entry := m.Entry()

	for fi, f := range m.Funcs {
		budgetHit := false
		// Repeatedly inline the first eligible call site until none remain
		// or the growth budget is hit.
		for !budgetHit {
			site := findInlineSite(m, fi, f, entry, reach, p.Threshold)
			if site == nil {
				break
			}
			inlineCall(m, f, site.block, site.index)
			ir.ComputeSizes(m)
			if f.Size > p.MaxGrowth {
				budgetHit = true
			}
		}
	}
	ir.ComputeSizes(m)
}

type inlineSite struct {
	block, index int
}

// findInlineSite locates the first call in f eligible for inlining.
func findInlineSite(m *ir.Module, fi int, f *ir.Function, entry int, reach [][]bool, threshold uint64) *inlineSite {
	throwy := throwyFuncs(m)
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			if in.Imm != 0 {
				continue // invoke sites keep their frame for unwinding
			}
			callee := int(in.Sym)
			cf := m.Funcs[callee]
			if callee == fi || callee == entry || cf.NoRelocate {
				continue
			}
			if throwy[callee] {
				// A throw escaping an inlined body would skip this frame's
				// place in the unwind order; keep the call.
				continue
			}
			if cf.Size > threshold {
				continue
			}
			if reach[callee][fi] || reach[callee][callee] {
				continue // mutual or self recursion: inlining would unroll forever
			}
			return &inlineSite{block: bi, index: ii}
		}
	}
	return nil
}

// throwyFuncs returns the set of functions that may raise an exception,
// directly or through a callee (invokes that catch internally still count,
// conservatively).
func throwyFuncs(m *ir.Module) map[int]bool {
	out := map[int]bool{}
	for fi, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpThrow {
					out[fi] = true
				}
			}
		}
	}
	reach := callReachability(m)
	for fi := range m.Funcs {
		for t := range out {
			if reach[fi][t] {
				out[fi] = true
				break
			}
		}
	}
	return out
}

// callReachability computes transitive reachability over the call graph:
// reach[a][b] means a can (transitively) call b.
func callReachability(m *ir.Module) [][]bool {
	n := len(m.Funcs)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for fi, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall {
					reach[fi][b.Instrs[i].Sym] = true
				}
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

// inlineCall splices the callee's body into f at the given call site.
func inlineCall(m *ir.Module, f *ir.Function, bi, ii int) {
	b := f.Blocks[bi]
	call := b.Instrs[ii]
	callee := m.Funcs[call.Sym]

	regBase := ir.Reg(f.NumRegs)
	f.NumRegs += callee.NumRegs
	slotBase := int32(len(f.Slots))
	f.Slots = append(f.Slots, callee.Slots...)
	blockBase := len(f.Blocks) + 1 // +1 for the continuation block

	mapReg := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return regBase + r
	}

	// Continuation block: the tail of the original block plus its
	// terminator.
	cont := &ir.Block{
		Instrs: append([]ir.Instr(nil), b.Instrs[ii+1:]...),
		Term:   b.Term,
	}
	contIdx := len(f.Blocks)
	f.Blocks = append(f.Blocks, cont)

	// Head keeps the prefix, binds arguments, and jumps into the body.
	head := b.Instrs[:ii:ii]
	for pi, arg := range call.Args {
		head = append(head, ir.Instr{Op: ir.OpMov, Dst: regBase + ir.Reg(pi), A: arg, B: ir.NoReg})
	}
	b.Instrs = head
	b.Term = ir.Terminator{Kind: ir.TermJmp, Then: blockBase, Cond: ir.NoReg, Val: ir.NoReg}

	// Copy callee blocks with registers, slots, and targets remapped;
	// returns become moves + jumps to the continuation.
	for _, cb := range callee.Blocks {
		nb := &ir.Block{Instrs: make([]ir.Instr, 0, len(cb.Instrs))}
		for _, in := range cb.Instrs {
			ni := in
			ni.Dst = mapReg(in.Dst)
			ni.A = mapReg(in.A)
			ni.B = mapReg(in.B)
			if len(in.Args) > 0 {
				ni.Args = make([]ir.Reg, len(in.Args))
				for ai, a := range in.Args {
					ni.Args[ai] = mapReg(a)
				}
			}
			switch in.Op {
			case ir.OpLoadS, ir.OpStoreS, ir.OpLoadSF, ir.OpStoreSF:
				ni.Sym = in.Sym + slotBase
			case ir.OpCall:
				if in.Imm != 0 {
					// Remap the invoke's handler into the copied blocks.
					ni.Imm = in.Imm + int64(blockBase)
				}
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
		t := cb.Term
		switch t.Kind {
		case ir.TermJmp:
			nb.Term = ir.Terminator{Kind: ir.TermJmp, Then: t.Then + blockBase, Cond: ir.NoReg, Val: ir.NoReg}
		case ir.TermBr:
			nb.Term = ir.Terminator{
				Kind: ir.TermBr, Cond: mapReg(t.Cond),
				Then: t.Then + blockBase, Else: t.Else + blockBase, Val: ir.NoReg,
			}
		case ir.TermRet:
			if call.Dst != ir.NoReg {
				src := mapReg(t.Val)
				if t.Val == ir.NoReg {
					// Callee returns nothing but the caller reads a value:
					// define zero.
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpConstI, Dst: call.Dst, A: ir.NoReg, B: ir.NoReg})
				} else {
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpMov, Dst: call.Dst, A: src, B: ir.NoReg})
				}
			}
			nb.Term = ir.Terminator{Kind: ir.TermJmp, Then: contIdx, Cond: ir.NoReg, Val: ir.NoReg}
		}
		f.Blocks = append(f.Blocks, nb)
	}
	m.Finalize() // recompute frame offsets after slot merge
}
