package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFaultErrorFiresAtNthHitOnce(t *testing.T) {
	defer Activate(1, Fault{Site: SitePoolWorker, Nth: 3, Kind: KindError})()
	ctx := context.Background()
	for i := 1; i <= 6; i++ {
		err := Hit(ctx, SitePoolWorker)
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: fault did not fire", i)
			}
			var ie *Error
			if !errors.As(err, &ie) || ie.Site != SitePoolWorker || ie.Hit != 3 {
				t.Fatalf("hit %d: wrong injected error %v", i, err)
			}
			if !Transient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected fault %v", i, err)
		}
	}
	if Hits(SitePoolWorker) != 6 {
		t.Fatalf("hit counter %d, want 6", Hits(SitePoolWorker))
	}
}

func TestFaultRepeatFiresFromNthOn(t *testing.T) {
	defer Activate(1, Fault{Site: SiteCellStart, Nth: 2, Kind: KindError, Repeat: true})()
	ctx := context.Background()
	if err := Hit(ctx, SiteCellStart); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if err := Hit(ctx, SiteCellStart); err == nil {
			t.Fatalf("hit %d: repeat fault silent", i)
		}
	}
}

func TestFaultPanicAndSiteIsolation(t *testing.T) {
	defer Activate(1, Fault{Site: SiteCompileCache, Nth: 1, Kind: KindPanic})()
	// Other sites are unaffected.
	if err := Hit(context.Background(), SitePoolWorker); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed panic fault did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), SiteCompileCache) {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	Hit(context.Background(), SiteCompileCache)
}

func TestFaultHangRespectsContext(t *testing.T) {
	defer Activate(1, Fault{Site: SitePoolWorker, Nth: 1, Kind: KindHang})()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Hit(ctx, SitePoolWorker)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived its context")
	}
}

func TestFaultDelayAndHook(t *testing.T) {
	fired := false
	defer Activate(1,
		Fault{Site: SiteCellStart, Nth: 1, Kind: KindDelay, Delay: time.Millisecond},
		Fault{Site: SiteCellStart, Nth: 2, Kind: KindHook, Hook: func() { fired = true }},
	)()
	if err := Hit(context.Background(), SiteCellStart); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if err := Hit(context.Background(), SiteCellStart); err != nil {
		t.Fatalf("hook returned %v", err)
	}
	if !fired {
		t.Fatal("hook did not run")
	}
}

func TestSeededNthIsDeterministicAndSmall(t *testing.T) {
	off := Activate(42, Fault{Site: SitePoolWorker, Kind: KindError})
	n1 := active.Load().faults[0].Nth
	off()
	off = Activate(42, Fault{Site: SitePoolWorker, Kind: KindError})
	n2 := active.Load().faults[0].Nth
	off()
	if n1 != n2 {
		t.Fatalf("same seed derived different ordinals: %d vs %d", n1, n2)
	}
	if n1 < 1 || n1 > 8 {
		t.Fatalf("derived ordinal %d outside [1, 8]", n1)
	}
}

func TestDeactivateRestoresNoOp(t *testing.T) {
	off := Activate(1, Fault{Site: SitePoolWorker, Nth: 1, Kind: KindError})
	off()
	if Enabled() {
		t.Fatal("plan still active after deactivation")
	}
	if err := Hit(context.Background(), SitePoolWorker); err != nil {
		t.Fatalf("deactivated plan fired: %v", err)
	}
	// A stale deactivation must not clobber a newer plan.
	off1 := Activate(1, Fault{Site: SitePoolWorker, Nth: 1, Kind: KindError})
	off2 := Activate(2, Fault{Site: SitePoolWorker, Nth: 1, Kind: KindError})
	off1()
	if !Enabled() {
		t.Fatal("stale deactivation removed the newer plan")
	}
	off2()
}

func TestHitConcurrencySafe(t *testing.T) {
	defer Activate(1, Fault{Site: SitePoolWorker, Nth: 50, Kind: KindError})()
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := Hit(context.Background(), SitePoolWorker); err != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 1 {
		t.Fatalf("fault fired %d times, want exactly once", injected)
	}
	if Hits(SitePoolWorker) != 200 {
		t.Fatalf("hit counter %d, want 200", Hits(SitePoolWorker))
	}
}

func TestTransientPredicateRejectsPlainErrors(t *testing.T) {
	if Transient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if Transient(fmt.Errorf("wrap: %w", context.DeadlineExceeded)) {
		t.Fatal("deadline error classified transient by the interface predicate")
	}
	if !Transient(fmt.Errorf("wrap: %w", &Error{Site: "x", Hit: 1})) {
		t.Fatal("wrapped injected error not classified transient")
	}
}
