package campaign

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// This file is the coordinator's multi-tenant lease scheduler and the
// autoscaling signal derivation.
//
// Scheduling is smooth weighted round-robin across tenants: each Acquire,
// every tenant with grantable work earns credit equal to its weight, the
// richest tenant wins the grant and pays the round's total weight back.
// Over time each tenant receives leases in proportion to its weight, and
// the interleaving is smooth (a weight-5 tenant gets 5 of every 6 grants
// spread out, not 5 in a burst) — so a CI gate's 2-cell smoke campaign
// keeps making progress while another tenant's 10k-cell sweep is in
// flight, without priorities or preemption. Ties break by lexical tenant
// order, keeping the grant sequence deterministic for tests.
//
// Within a tenant, scheduling is unchanged from the single-tenant farm:
// oldest campaign first, artifact cell order within a campaign.

// tenantWeight returns a tenant's configured WRR weight (>= 1).
func (c *Coordinator) tenantWeight(tenant string) int {
	if w, ok := c.opts.TenantWeights[tenant]; ok && w > 1 {
		return w
	}
	return 1
}

// schedulable reports whether a tenant may receive another lease: below
// its inflight cap (or uncapped).
func (c *Coordinator) schedulableLocked(tenant string, inflight int) bool {
	limit := c.opts.MaxInflightPerTenant
	return limit <= 0 || inflight < limit
}

// scheduleLocked picks the next cell to lease (or nil when nothing is
// grantable) and counts the remaining open cells. Must hold c.mu.
func (c *Coordinator) scheduleLocked(worker string) (*lease, int) {
	// One pass over the campaign list builds the per-tenant view:
	// pending/leased counts and the oldest campaign with a pending cell.
	type tenantQueue struct {
		pending  int
		inflight int
		head     *campaignState // oldest running campaign with a pending cell
	}
	queues := map[string]*tenantQueue{}
	remaining := 0
	for _, camp := range c.campaigns {
		if camp.state != StateRunning {
			continue
		}
		q := queues[camp.tenant]
		if q == nil {
			q = &tenantQueue{}
			queues[camp.tenant] = q
		}
		for _, cell := range camp.cells {
			switch cell.state {
			case cellPending:
				remaining++
				q.pending++
				if q.head == nil {
					q.head = camp
				}
			case cellLeased:
				remaining++
				q.inflight++
			}
		}
	}

	// Eligible tenants, in deterministic (lexical) order.
	var eligible []string
	total := 0
	for tenant, q := range queues {
		if q.pending > 0 && c.schedulableLocked(tenant, q.inflight) {
			eligible = append(eligible, tenant)
			total += c.tenantWeight(tenant)
		}
	}
	if len(eligible) == 0 {
		return nil, remaining
	}
	sort.Strings(eligible)

	// Smooth WRR: earn weight, pick the richest, pay back the round.
	winner := eligible[0]
	for _, tenant := range eligible {
		c.wrrCredit[tenant] += c.tenantWeight(tenant)
		if c.wrrCredit[tenant] > c.wrrCredit[winner] {
			winner = tenant
		}
	}
	c.wrrCredit[winner] -= total

	camp := queues[winner].head
	for _, cell := range camp.cells {
		if cell.state != cellPending {
			continue
		}
		c.nextLease++
		cell.state = cellLeased
		cell.attempts++
		cell.lease = c.nextLease
		if cell.firstGrant.IsZero() {
			cell.firstGrant = c.opts.now()
			if !camp.submitted.IsZero() {
				// Queue wait: submit → first lease, per cell. Wall-clock and
				// scheduling-dependent, hence non-golden; feeds /metrics and
				// the timeline's straggler report.
				wait := cell.firstGrant.Sub(camp.submitted).Seconds()
				if wait < 0 {
					wait = 0
				}
				c.metrics().Histogram("campaign.queue.wait_seconds").Observe(wait)
			}
		}
		grant := &lease{
			id: c.nextLease, campaign: camp, cell: cell, worker: worker,
			deadline: c.opts.now().Add(c.opts.LeaseTTL),
			attempt:  cell.attempts,
		}
		c.leases[grant.id] = grant
		c.metrics().Counter("campaign.leases.granted").Inc()
		c.eventLocked(camp, "lease granted", obs.F("cell", cell.Bench),
			obs.F("worker", worker), obs.F("lease", grant.id),
			obs.F("attempt", cell.attempts), obs.F("tenant", winner),
			obs.F("trace", camp.trace),
			obs.F("span", obs.SpanID(camp.id, cell.Bench, cell.attempts)))
		return grant, remaining
	}
	return nil, remaining // unreachable: head had a pending cell
}

// recentDoneCap bounds the completion-time ring behind the drain-rate
// estimate.
const recentDoneCap = 256

// workerWindowTTLs is how many lease TTLs of silence retire a worker from
// the scaling report's live-worker count.
const workerWindowTTLs = 2

// noteCompletionLocked records a cell completion time for the throughput
// estimate. Must hold c.mu.
func (c *Coordinator) noteCompletionLocked() {
	c.recentDone = append(c.recentDone, c.opts.now())
	if len(c.recentDone) > recentDoneCap {
		c.recentDone = c.recentDone[len(c.recentDone)-recentDoneCap:]
	}
}

// TenantScaling is one tenant's slice of the scaling report.
type TenantScaling struct {
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	// Pending and Inflight count the tenant's open cells by state.
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
	// Campaigns counts the tenant's running campaigns.
	Campaigns int `json:"campaigns"`
}

// ScalingReport answers GET /v1/scaling: the signals a worker autoscaler
// needs, derived from the same state behind the campaign.* counters. All
// fields are instantaneous observations, not promises — the report is a
// scaling hook, not part of the golden surface.
type ScalingReport struct {
	// Coordinator and Epoch attribute the report across failovers.
	Coordinator string `json:"coordinator"`
	Epoch       uint64 `json:"epoch"`
	// Backlog counts pending (unleased) cells; Inflight counts leased ones.
	Backlog  int `json:"backlog"`
	Inflight int `json:"inflight"`
	// Workers counts distinct workers heard from within the last
	// workerWindowTTLs lease TTLs.
	Workers int `json:"workers"`
	// LeaseUtilization is Inflight / Workers (0 with no live workers):
	// near 1.0 every worker is busy and backlog means "add workers"; near
	// 0 adding workers won't help.
	LeaseUtilization float64 `json:"lease_utilization"`
	// CompletionsPerSecond is the recent cell throughput (over the ring of
	// the last recentDoneCap completions; 0 until two completions land).
	CompletionsPerSecond float64 `json:"completions_per_second"`
	// EstimatedDrainSeconds extrapolates (Backlog + Inflight) at that
	// throughput; 0 when the farm is idle or the rate is unknown.
	EstimatedDrainSeconds float64 `json:"estimated_drain_seconds"`
	// Tenants breaks the queue down per tenant, sorted by label.
	Tenants []TenantScaling `json:"tenants,omitempty"`
}

// Scaling derives the autoscaling signals from current scheduler state.
func (c *Coordinator) Scaling() ScalingReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	now := c.opts.now()
	rep := ScalingReport{Coordinator: c.opts.Identity}
	if c.opts.Fence != nil {
		rep.Epoch = c.opts.Fence.Epoch()
	}

	perTenant := map[string]*TenantScaling{}
	for _, camp := range c.campaigns {
		if camp.state != StateRunning {
			continue
		}
		ts := perTenant[camp.tenant]
		if ts == nil {
			ts = &TenantScaling{Tenant: camp.tenant, Weight: c.tenantWeight(camp.tenant)}
			perTenant[camp.tenant] = ts
		}
		ts.Campaigns++
		for _, cell := range camp.cells {
			switch cell.state {
			case cellPending:
				rep.Backlog++
				ts.Pending++
			case cellLeased:
				rep.Inflight++
				ts.Inflight++
			}
		}
	}
	var labels []string
	for tenant := range perTenant {
		labels = append(labels, tenant)
	}
	sort.Strings(labels)
	for _, tenant := range labels {
		rep.Tenants = append(rep.Tenants, *perTenant[tenant])
	}

	window := time.Duration(workerWindowTTLs) * c.opts.LeaseTTL
	for worker, seen := range c.workerSeen {
		if now.Sub(seen) > window {
			delete(c.workerSeen, worker) // retired: free the entry too
			continue
		}
		rep.Workers++
	}
	if rep.Workers > 0 {
		rep.LeaseUtilization = float64(rep.Inflight) / float64(rep.Workers)
	}
	if n := len(c.recentDone); n >= 2 {
		span := now.Sub(c.recentDone[0]).Seconds()
		if span > 0 {
			rep.CompletionsPerSecond = float64(n) / span
		}
	}
	if open := rep.Backlog + rep.Inflight; open > 0 && rep.CompletionsPerSecond > 0 {
		rep.EstimatedDrainSeconds = float64(open) / rep.CompletionsPerSecond
	}
	return rep
}
