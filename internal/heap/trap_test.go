package heap

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trap"
)

// allAllocators builds one instance of every allocator policy against a
// fresh address space, so trap tests can assert that misuse is classified
// identically regardless of layout policy.
func allAllocators() []Allocator {
	return []Allocator{
		NewSegregated(mem.NewAddressSpace()),
		NewTLSF(mem.NewAddressSpace(), 1<<20),
		NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(17)),
		NewShuffle(NewSegregated(mem.NewAddressSpace()), rng.NewMarsaglia(17), 16),
	}
}

func wantTrap(t *testing.T, name string, err error, kind trap.Kind) {
	t.Helper()
	tr := trap.AsTrap(err)
	if tr == nil {
		t.Fatalf("%s: got %v, want a %v trap", name, err, kind)
	}
	if tr.Kind != kind {
		t.Fatalf("%s: trap kind %v, want %v", name, tr.Kind, kind)
	}
}

// TestTrapKindsUniformAcrossAllocators drives each misuse scenario through
// all four allocator policies and asserts the identical TrapError kind —
// the precondition for the oracle's fault-equivalence checking, which
// compares trap kinds across the allocator axis of the matrix.
func TestTrapKindsUniformAcrossAllocators(t *testing.T) {
	scenarios := []struct {
		name string
		kind trap.Kind
		run  func(a Allocator) error
	}{
		{
			name: "double free",
			kind: trap.DoubleFree,
			run: func(a Allocator) error {
				addr, err := a.Alloc(64)
				if err != nil {
					return err
				}
				if err := a.Free(addr); err != nil {
					return err
				}
				return a.Free(addr)
			},
		},
		{
			name: "free of unknown address",
			kind: trap.UnknownFree,
			run: func(a Allocator) error {
				// Allocate a little first so the allocator has live state;
				// the freed address was still never issued.
				if _, err := a.Alloc(64); err != nil {
					return err
				}
				return a.Free(0xdead0)
			},
		},
		{
			name: "free after recycle then double free",
			kind: trap.DoubleFree,
			run: func(a Allocator) error {
				// Free an address, churn the allocator so the address may
				// be recycled and released again internally (TLSF coalesces,
				// shuffle swaps), then free the original pointer again.
				addr, err := a.Alloc(64)
				if err != nil {
					return err
				}
				if err := a.Free(addr); err != nil {
					return err
				}
				for i := 0; i < 8; i++ {
					b, err := a.Alloc(64)
					if err != nil {
						return err
					}
					if b == addr {
						// The recycled address is live again; release it so
						// the final free is a true double free.
						if err := a.Free(b); err != nil {
							return err
						}
						break
					}
				}
				return a.Free(addr)
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, a := range allAllocators() {
				wantTrap(t, a.Name(), sc.run(a), sc.kind)
			}
		})
	}
}

func TestTrapErrorsMatchByKind(t *testing.T) {
	a := NewSegregated(mem.NewAddressSpace())
	addr := mustAlloc(t, a, 32)
	mustFree(t, a, addr)
	err := a.Free(addr)
	if !errors.Is(err, &trap.TrapError{Kind: trap.DoubleFree}) {
		t.Fatalf("errors.Is did not match a double-free trap: %v", err)
	}
	if errors.Is(err, &trap.TrapError{Kind: trap.UnknownFree}) {
		t.Fatal("errors.Is matched the wrong trap kind")
	}
}

func TestTrapCarriesDetail(t *testing.T) {
	a := NewTLSF(mem.NewAddressSpace(), 1<<20)
	err := a.Free(0xabc0)
	tr := trap.AsTrap(err)
	if tr == nil || tr.Detail == "" {
		t.Fatalf("trap missing detail: %v", err)
	}
	if tr.Step != 0 || tr.Fn != "" {
		t.Fatalf("allocator-level trap should not carry interpreter coordinates: %+v", tr)
	}
}
