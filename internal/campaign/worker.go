package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// Worker pulls leases from a coordinator, computes cells through the local
// experiment engine — inheriting its pool parallelism, per-cell watchdog,
// and transient-retry semantics — and posts results back. Run returns when
// the context is cancelled, or, with IdleExit, when the farm reports no
// remaining work.
type Worker struct {
	// Client reaches the coordinator (required).
	Client *Client
	// Name identifies the worker in leases and events.
	Name string
	// Poll is the idle poll interval (default 500ms).
	Poll time.Duration
	// IdleExit exits Run when the coordinator reports zero remaining cells.
	IdleExit bool
	// CircuitMax caps the acquire backoff when the coordinator is
	// unreachable (default 30s). Consecutive acquire failures double the
	// poll delay up to this cap — a circuit breaker, so a dead coordinator
	// costs a fleet one request per worker per CircuitMax, not a poll-rate
	// hammering — and one success snaps the delay back to Poll.
	CircuitMax time.Duration
	// Obs receives worker counters (worker.cells.completed,
	// worker.cells.failed — golden per assigned work; worker.leases.acquired
	// and worker.heartbeats.sent are scheduling-dependent and non-golden)
	// and the worker log.
	Obs *obs.Scope
}

func (w *Worker) metrics() *obs.Registry {
	if w.Obs != nil {
		return w.Obs.Metrics
	}
	return nil
}

func (w *Worker) logger() *obs.Logger {
	if w.Obs != nil {
		return w.Obs.Log
	}
	return nil
}

// Run is the worker loop. Transport errors are retried with the poll
// delay — a worker outliving a coordinator restart is part of the fault
// model — but a cancelled context always wins.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return fmt.Errorf("campaign: worker needs a client")
	}
	if w.Name == "" {
		w.Name = "worker"
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	circuitMax := w.CircuitMax
	if circuitMax <= 0 {
		circuitMax = 30 * time.Second
	}
	if w.Obs != nil {
		w.Obs.Metrics.Counter("worker.leases.acquired").NonGolden()
		w.Obs.Metrics.Counter("worker.heartbeats.sent").NonGolden()
		w.Obs.Metrics.Histogram("worker.cell.seconds").NonGolden()
	}
	backoff := poll
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if experiment.Draining(ctx) {
			// Shutdown was requested (first SIGINT/SIGTERM): the in-flight
			// cell has finished and been posted (or its lease released);
			// exit cleanly instead of taking new leases.
			w.logger().Info("drain requested; worker exiting", obs.F("worker", w.Name))
			return nil
		}
		resp, err := w.Client.Acquire(ctx, w.Name)
		if err != nil {
			w.logger().Warn("lease request failed", obs.F("err", err.Error()),
				obs.F("backoff", backoff.String()))
			w.metrics().Counter("worker.acquire.failures").NonGolden().Inc()
			if serr := sleepCtx(ctx, jitterDur(backoff)); serr != nil {
				return serr
			}
			if backoff *= 2; backoff > circuitMax {
				backoff = circuitMax
			}
			continue
		}
		backoff = poll
		if resp.Lease == nil {
			if resp.Remaining == 0 && w.IdleExit {
				w.logger().Info("farm idle, exiting", obs.F("worker", w.Name))
				return nil
			}
			if serr := sleepCtx(ctx, jitterDur(poll)); serr != nil {
				return serr
			}
			continue
		}
		w.metrics().Counter("worker.leases.acquired").Inc()
		w.runLease(ctx, resp.Lease)
	}
}

// runLease computes one leased cell under a heartbeat and posts the
// completion. Compute errors are reported to the coordinator (which owns
// the requeue/fail decision); transport errors on the completion post are
// retried briefly — an unreported cell is merely a lost lease, which the
// coordinator's expiry requeues.
func (w *Worker) runLease(ctx context.Context, l *Lease) {
	w.logger().Info("lease acquired", obs.F("worker", w.Name), obs.F("cell", l.Bench),
		obs.F("campaign", l.Campaign), obs.F("lease", l.ID), obs.F("attempt", l.Attempt),
		obs.F("trace", l.Trace), obs.F("span", l.Span))

	// Every exchange for this lease — heartbeats, the completion, the
	// release — carries the grant's trace context, so the coordinator's
	// log and the worker's compute join into one distributed trace.
	ctx = obs.WithTraceContext(ctx, obs.TraceContext{TraceID: l.Trace, SpanID: l.Span})

	// Heartbeat at a third of the TTL until the cell completes. A failed
	// heartbeat with StatusGone means the lease expired under us: cancel
	// the compute — a successor lease is (or will be) running the cell.
	hbCtx, cancelHB := context.WithCancel(ctx)
	cellCtx, cancelCell := context.WithCancel(ctx)
	defer cancelHB()
	defer cancelCell()
	ttl := time.Duration(l.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	go func() {
		// Each interval is re-jittered around ttl/3 so a worker fleet whose
		// heartbeats were synchronized by a common event (a coordinator
		// failover resetting every lease at once) de-correlates instead of
		// thundering against the freshly promoted coordinator.
		timer := time.NewTimer(jitterDur(ttl / 3))
		defer timer.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-timer.C:
				ok, err := w.Client.Heartbeat(hbCtx, l.ID)
				if err == nil && !ok {
					w.logger().Warn("lease expired under us; abandoning cell",
						obs.F("cell", l.Bench), obs.F("lease", l.ID))
					cancelCell()
					return
				}
				if err == nil {
					w.metrics().Counter("worker.heartbeats.sent").Inc()
				}
				timer.Reset(jitterDur(ttl / 3))
			}
		}
	}()

	started := time.Now()
	results, events, err := w.computeCell(cellCtx, l)
	finished := time.Now()
	cancelHB()
	w.metrics().Histogram("worker.cell.seconds").NonGolden().Observe(finished.Sub(started).Seconds())
	req := CompleteRequest{
		Worker: w.Name, Results: results, Events: events,
		// The lease id is single-use, so it keys this completion for
		// server-side dedup when the post is retried after a lost response.
		IdempotencyKey: fmt.Sprintf("lease-%d", l.ID),
		Trace:          l.Trace,
		Span:           l.Span,
		// The worker-side half of the attempt's span: compile + runs on
		// this worker's wall clock. The coordinator folds it into the
		// event log for the timeline and into artifact provenance.
		SpanRecord: &SpanRecord{
			Trace: l.Trace, Span: l.Span, Worker: w.Name,
			StartUnixNs: started.UnixNano(), EndUnixNs: finished.UnixNano(),
		},
	}
	if err != nil {
		if errors.Is(cellCtx.Err(), context.Canceled) && ctx.Err() == nil {
			// Abandoned after lease expiry: nothing to report, the
			// coordinator already requeued the cell.
			w.metrics().Counter("worker.cells.abandoned").NonGolden().Inc()
			return
		}
		if errors.Is(err, experiment.ErrStopped) || ctx.Err() != nil {
			// This worker is draining (or hard-cancelled), not the cell
			// failing: hand the lease back so the cell requeues immediately
			// — without burning an attempt — instead of idling until TTL
			// expiry.
			w.releaseLease(ctx, l)
			return
		}
		req.Results = nil
		req.Error = err.Error()
		w.metrics().Counter("worker.cells.failed").Inc()
	} else {
		w.metrics().Counter("worker.cells.completed").Inc()
	}
	if cerr := w.Client.Complete(ctx, l.ID, req); cerr != nil {
		w.logger().Warn("posting completion failed; lease will expire and requeue",
			obs.F("cell", l.Bench), obs.F("err", cerr.Error()))
	}
}

// releaseLease returns an in-flight lease during shutdown. On a hard cancel
// the worker's context is already dead, so the release runs best-effort on
// a short independent deadline; a failure costs nothing but requeue latency
// (the lease TTL still expires).
func (w *Worker) releaseLease(ctx context.Context, l *Lease) {
	w.logger().Info("draining; releasing lease", obs.F("cell", l.Bench), obs.F("lease", l.ID))
	w.metrics().Counter("worker.cells.abandoned").NonGolden().Inc()
	rctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	if _, err := w.Client.Release(rctx, l.ID, w.Name); err != nil {
		w.logger().Warn("lease release failed; lease will expire and requeue",
			obs.F("lease", l.ID), obs.F("err", err.Error()))
	}
}

// computeCell runs one cell through the ordinary collection path and
// returns its results plus the per-cell telemetry lines (obs wire format)
// delivered back with the completion.
func (w *Worker) computeCell(ctx context.Context, l *Lease) ([]experiment.RunResult, []json.RawMessage, error) {
	b, ok := BenchByName(l.Bench)
	if !ok {
		return nil, nil, fmt.Errorf("worker %s: unknown benchmark %q", w.Name, l.Bench)
	}
	cc, err := experiment.CompileBench(b, l.Config)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	ss, err := cc.Collect(ctx, l.Runs, l.SeedBase)
	if err != nil {
		return nil, nil, err
	}
	var line lineBuffer
	obs.NewLogger(&line, obs.LevelInfo).Info("cell computed",
		obs.F("worker", w.Name), obs.F("cell", l.Bench), obs.F("runs", l.Runs),
		obs.F("trace", l.Trace), obs.F("span", l.Span),
		obs.F("host_seconds_nongolden", time.Since(start).Seconds()))
	return ss.Results, []json.RawMessage{json.RawMessage(trimNL(line.line))}, nil
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// jitterDur spreads a nominal delay uniformly over [d/2, 3d/2), so
// periodic timers across a fleet (heartbeats, idle polls, standby lease
// polls) cannot stay phase-locked after a synchronizing event.
func jitterDur(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps d or until ctx is done, returning ctx's error in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
