package interp

import "fmt"

// Engine selects the execution strategy. Both engines implement identical
// semantics — byte-identical digests, identical machine-counter sequences,
// identical Observer windows, identical trap and exception behaviour — and
// the cross-engine differential suite holds them to it. They differ only in
// host speed: the compiled engine pre-lowers each module into flat closure
// streams and drives the machine through precomputed fast paths, while the
// walk engine re-decodes the IR tree on every instruction and remains the
// (slower, simpler) differential reference.
type Engine uint8

const (
	// EngineCompiled pre-lowers IR into a flat instruction stream of fused
	// closures (the default).
	EngineCompiled Engine = iota
	// EngineWalk is the original tree-walk interpreter, kept as the
	// differential reference.
	EngineWalk
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineWalk:
		return "walk"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "compiled", "":
		return EngineCompiled, nil
	case "walk":
		return EngineWalk, nil
	}
	return 0, fmt.Errorf("interp: unknown engine %q (valid: compiled, walk)", s)
}

// Engines lists the selectable engines, compiled first (the default).
func Engines() []Engine { return []Engine{EngineCompiled, EngineWalk} }
