package interp

import (
	"repro/internal/heap"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Runtime cost constants shared by all runtimes: the modeled cycle cost of
// the allocator's own bookkeeping.
const (
	MallocCost = 30
	FreeCost   = 20
)

// NativeRuntime is the baseline execution environment: functions and globals
// at the fixed addresses the static linker assigned, stack frames packed
// back to back, and a conventional heap. It is "a binary": one point in the
// space of layouts, sampled over and over on every run — the methodological
// problem the paper begins from.
type NativeRuntime struct {
	FuncAddrs   []mem.Addr
	GlobalAddrs []mem.Addr
	Stack       mem.Addr
	Heap        heap.Allocator
	Mach        *machine.Machine
}

// CodeBase implements Runtime.
func (n *NativeRuntime) CodeBase(fn int) mem.Addr { return n.FuncAddrs[fn] }

// BlockOffsets implements Runtime; native blocks sit at static offsets.
func (n *NativeRuntime) BlockOffsets(fn int) []uint64 { return nil }

// GlobalAddr implements Runtime.
func (n *NativeRuntime) GlobalAddr(g int) mem.Addr { return n.GlobalAddrs[g] }

// StackBase implements Runtime.
func (n *NativeRuntime) StackBase() mem.Addr { return n.Stack }

// BeforeCall implements Runtime; native calls have no padding or extra work.
func (n *NativeRuntime) BeforeCall(fn int) uint64 { return 0 }

// RelocCall implements Runtime; native calls are direct.
func (n *NativeRuntime) RelocCall(curFn, callee int) (mem.Addr, bool) { return 0, false }

// RelocGlobal implements Runtime; native global accesses are absolute.
func (n *NativeRuntime) RelocGlobal(curFn, g int) (mem.Addr, bool) { return 0, false }

// Alloc implements Runtime.
func (n *NativeRuntime) Alloc(size uint64) (mem.Addr, error) {
	n.Mach.Stall(MallocCost)
	return n.Heap.Alloc(size)
}

// Free implements Runtime.
func (n *NativeRuntime) Free(addr mem.Addr) error {
	n.Mach.Stall(FreeCost)
	return n.Heap.Free(addr)
}

// Tick implements Runtime; the native runtime has no timers.
func (n *NativeRuntime) Tick(stack func() []mem.Addr) {}
