package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compiler"
	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/oracle"
	"repro/internal/spec"
)

// parseLevels turns "0,2,3" into validated optimization levels.
func parseLevels(s string) ([]compiler.OptLevel, error) {
	var out []compiler.OptLevel
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -O list %q: %v", s, err)
		}
		lv, err := compiler.ParseLevel(n)
		if err != nil {
			return nil, err
		}
		out = append(out, lv)
	}
	return out, nil
}

// runVerify implements `stabilizer verify`: the semantic-invariance oracle
// over the benchmark suite and the example programs. Exit status 1 means a
// divergence or infrastructure failure (the report is printed), 2 a usage
// error.
func runVerify(args []string) int {
	fs := flag.NewFlagSet("stabilizer verify", flag.ExitOnError)
	bench := fs.String("bench", "", "verify only this benchmark (default: full suite + examples)")
	seeds := fs.Int("seeds", 3, "randomization seeds per cell axis")
	levels := fs.String("O", "0,1,2,3", "comma-separated optimization levels to sweep")
	allocs := fs.String("allocs", strings.Join(oracle.AllocatorNames, ","), "comma-separated heap allocators to sweep")
	engines := fs.String("engines", "compiled,walk", "comma-separated execution engines to sweep")
	scale := fs.Float64("scale", 0.1, "workload scale (verification sweeps many cells; keep small)")
	jobs := fs.Int("j", 0, "parallel workers (0 = $SZ_PARALLEL or GOMAXPROCS)")
	interval := fs.Uint64("interval", 0, "re-randomization interval in cycles (0 = oracle default)")
	fs.Parse(args)

	experiment.SetParallelism(*jobs)

	lvs, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer verify: %v\n", err)
		return 2
	}
	var seedList []uint64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, uint64(i+1))
	}
	var engList []interp.Engine
	for _, part := range strings.Split(*engines, ",") {
		eng, err := interp.ParseEngine(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stabilizer verify: %v\n", err)
			return 2
		}
		engList = append(engList, eng)
	}

	benches := append(spec.FullSuite(), spec.Examples()...)
	if *bench != "" {
		b, ok := spec.ByName(*bench)
		if !ok {
			for _, e := range spec.Examples() {
				if e.Name == *bench {
					b, ok = e, true
					break
				}
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "stabilizer verify: unknown benchmark %q\n", *bench)
			return 2
		}
		benches = []spec.Benchmark{b}
	}

	opts := experiment.VerifyOptions{
		Scale:   *scale,
		Workers: *jobs,
		Oracle: oracle.Options{
			Seeds:      seedList,
			Levels:     lvs,
			Allocators: strings.Split(*allocs, ","),
			Engines:    engList,
			Interval:   *interval,
		},
	}

	fmt.Printf("verifying semantic invariance: %d programs x %d seeds x %d levels x %d allocators x %d engines\n",
		len(benches), len(seedList), len(lvs), len(opts.Oracle.Allocators), len(engList))
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	rep, err := experiment.VerifySemantics(ctx, benches, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer verify: %v\n", err)
		return 1
	}
	fmt.Print(rep)
	if rep.Failed() {
		return 1
	}
	fmt.Printf("all %d cells agree\n", rep.Cells)
	return 0
}
