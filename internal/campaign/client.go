package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the farm protocol's HTTP client, shared by workers, the szfarm
// CLI, and tests.
type Client struct {
	// Server is the coordinator's base URL, e.g. "http://localhost:8713".
	Server string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the coordinator at base URL server.
func NewClient(server string) *Client {
	return &Client{Server: server}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// doJSON performs one JSON request/response exchange. A non-2xx status is
// returned as an error carrying the server's error message.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("campaign: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Server+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// StatusError is a non-2xx farm response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("campaign: server returned %d: %s", e.Code, e.Message)
}

// Submit posts a campaign spec.
func (c *Client) Submit(ctx context.Context, spec Spec) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/campaigns", spec, &out)
	return out, err
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var out Status
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out, err
}

// StatusAll fetches every campaign's summary.
func (c *Client) StatusAll(ctx context.Context) ([]Status, error) {
	var out []Status
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Artifact fetches a completed campaign's merged artifact bytes.
func (c *Client) Artifact(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+"/v1/campaigns/"+id+"/artifact", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.Unmarshal(buf, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	return buf, nil
}

// Events fetches a campaign's JSONL event log; with follow it streams
// until the campaign is terminal, writing lines to w as they arrive.
func (c *Client) Events(ctx context.Context, id string, follow bool, w io.Writer) error {
	url := c.Server + "/v1/campaigns/" + id + "/events"
	if follow {
		url += "?follow=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &StatusError{Code: resp.StatusCode, Message: resp.Status}
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Acquire requests a lease.
func (c *Client) Acquire(ctx context.Context, worker string) (AcquireResponse, error) {
	var out AcquireResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/leases",
		map[string]string{"worker": worker}, &out)
	return out, err
}

// Heartbeat extends a lease; ok=false means the lease is gone and the
// worker should abandon the cell.
func (c *Client) Heartbeat(ctx context.Context, leaseID uint64) (ok bool, err error) {
	err = c.doJSON(ctx, http.MethodPost, fmt.Sprintf("/v1/leases/%d/heartbeat", leaseID), map[string]any{}, nil)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusGone {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Complete posts a finished cell.
func (c *Client) Complete(ctx context.Context, leaseID uint64, req CompleteRequest) error {
	return c.doJSON(ctx, http.MethodPost, fmt.Sprintf("/v1/leases/%d/complete", leaseID), req, nil)
}

// WaitDone polls a campaign until it reaches a terminal state; it returns
// the final status (whose State distinguishes done from failed).
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return st, err
		}
	}
}
