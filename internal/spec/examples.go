package spec

import (
	"fmt"

	"repro/internal/ir"
)

// QuickstartProgram builds the quickstart demo program: a hot hash loop over
// a few helper functions. extraPad adds a do-nothing stack slot to one
// helper — the kind of incidental edit (§1: "adding or removing a stack
// variable") that moves every address after it. It lives here, rather than
// in the example binary, so the semantic-invariance verifier sweeps the
// exact module the demo runs.
func QuickstartProgram(extraPad bool, scale float64) *ir.Module {
	mb := ir.NewModuleBuilder("quickstart")

	helpers := make([]int32, 6)
	for i := range helpers {
		f := mb.Func(fmt.Sprintf("mix%d", i), 1)
		if extraPad && i == 0 {
			f.Slot("padding", 64) // the "change" under test
		}
		v := f.Mov(f.Param(0))
		for r := 0; r < 6; r++ {
			m := f.Mul(v, f.ConstI(int64(2654435761+i*37+r)))
			v = f.Xor(m, f.Shr(m, f.ConstI(int64(11+r))))
		}
		f.Ret(v)
		helpers[i] = f.Index()
	}

	main := mb.Func("main", 0)
	acc := main.ConstI(12345)
	main.LoopN(n(scale, 4000), func(i ir.Reg) {
		for _, h := range helpers {
			main.MovTo(acc, main.Call(h, main.Add(acc, i)))
		}
	})
	main.Sink(acc)
	main.Ret(ir.NoReg)
	return mb.Module()
}

// Examples returns the example programs as benchmarks, so the
// semantic-invariance verifier (stabilizer verify, experiments
// -verify-semantics) covers them with the same machinery as the suite.
func Examples() []Benchmark {
	base := Benchmark{
		Name: "quickstart", Lang: "c",
		Notes: "the demo pair's baseline: a hot hash loop over six helpers",
		Build: func(scale float64) *ir.Module { return QuickstartProgram(false, scale) },
	}
	padded := Benchmark{
		Name: "quickstart-pad", Lang: "c",
		Notes: "the demo pair's 'change': the same program with an unused 64-byte stack slot in one helper",
		Build: func(scale float64) *ir.Module { return QuickstartProgram(true, scale) },
	}
	return []Benchmark{base, padded}
}
