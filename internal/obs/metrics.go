package obs

import (
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
)

// MetricsSchema versions the metrics snapshot encoding.
const MetricsSchema = 1

// Registry holds named metrics. All methods are safe for concurrent use;
// looking up the same name twice returns the same metric. Names use
// dotted paths ("compile.cache.hits"); the glossary lives in README.md.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Nil-receiver
// safe: a nil registry returns a detached counter that still works, so
// instrumentation sites need no nil checks.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named log-bucketed histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64. Counters are golden by
// default — a deterministic engine increments them identically at any
// worker count — but counters that track scheduling or wall-clock events
// (lease grants, missed heartbeats, requeues) are environmental; mark
// those NonGolden so snapshots classify them with the other
// non-reproducible telemetry.
type Counter struct {
	v         atomic.Uint64
	nonGolden atomic.Bool
}

// NonGolden marks the counter as scheduling/wall-clock-dependent: it is
// reported under the snapshot's non-golden section and excluded from
// golden snapshots. Returns the counter for chaining at the registration
// site.
func (c *Counter) NonGolden() *Counter {
	c.nonGolden.Store(true)
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets spans 2^-32 .. 2^31 in power-of-two buckets, enough for
// byte counts, cycle counts, and sub-nanosecond-to-hours durations in
// seconds.
const (
	histMinExp  = -32
	histBuckets = 64
)

// Histogram is a log-bucketed (power-of-two) histogram. Observations are
// order-independent (counts and sums), so a histogram of deterministic
// values is itself deterministic at any worker count. Mark histograms of
// wall-clock measurements NonGolden so they are excluded from golden
// snapshots.
type Histogram struct {
	mu        sync.Mutex
	count     uint64
	sum       float64
	min, max  float64
	buckets   [histBuckets]uint64
	nonGolden bool
}

// NonGolden marks the histogram as wall-clock-derived: it is skipped by
// Snapshot unless non-golden metrics are requested. Returns the histogram
// for chaining at the registration site.
func (h *Histogram) NonGolden() *Histogram {
	h.mu.Lock()
	h.nonGolden = true
	h.mu.Unlock()
	return h
}

// Observe records one value. Non-finite and negative values are clamped
// into the first bucket (they still count toward count/sum bounds).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v float64) int {
	if !(v > 0) || math.IsInf(v, 0) {
		return 0
	}
	e := math.Ilogb(v)
	idx := e - histMinExp + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// HistogramSnapshot is the serialized form of one histogram. Buckets maps
// the bucket's upper bound (2^k, rendered as a JSON number) to its count;
// empty buckets are omitted.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// snapshot serializes the histogram under its lock.
func (h *Histogram) snapshot() (HistogramSnapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = map[string]uint64{}
		}
		s.Buckets[bucketBound(i)] = n
	}
	return s, h.nonGolden
}

// bucketBound renders bucket i's upper bound as "le_2^k" (bucket 0 is the
// underflow bucket for zero, negative, and non-finite values).
func bucketBound(i int) string {
	if i == 0 {
		return "underflow"
	}
	exp := i - 1 + histMinExp + 1
	return "le_2^" + itoa(exp)
}

func itoa(n int) string {
	// strconv-free tiny int formatter keeps this file dependency-light.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Snapshot is a point-in-time serialization of a registry. Maps encode
// with sorted keys (encoding/json), so equal snapshots produce equal
// bytes. The NonGolden section holds wall-clock-derived histograms and is
// present only when requested.
type Snapshot struct {
	Schema   int               `json:"schema"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges are last-write-wins operational values (worker counts, queue
	// depths) — environmental rather than seed-determined, so they are
	// reported only alongside the non-golden section.
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// NonGolden holds wall-clock histograms: real on any given run, but
	// not reproducible across runs or worker counts. Never part of golden
	// comparisons.
	NonGolden map[string]HistogramSnapshot `json:"non_golden,omitempty"`
	// NonGoldenCounters holds counters marked Counter.NonGolden —
	// scheduling- and timing-dependent event counts (farm lease grants,
	// missed heartbeats, requeues). Present only when non-golden metrics
	// are requested.
	NonGoldenCounters map[string]uint64 `json:"non_golden_counters,omitempty"`
}

// Snapshot captures every metric. includeNonGolden adds the wall-clock
// histograms under the non_golden key and the (environmental) gauges;
// golden artifacts leave it false.
func (r *Registry) Snapshot(includeNonGolden bool) Snapshot {
	s := Snapshot{Schema: MetricsSchema}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		if c.nonGolden.Load() {
			if !includeNonGolden {
				continue
			}
			if s.NonGoldenCounters == nil {
				s.NonGoldenCounters = map[string]uint64{}
			}
			s.NonGoldenCounters[k] = c.Value()
			continue
		}
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		// A gauge like pool.workers tracks the environment (-j), not the
		// seed: including it in golden snapshots would break byte-identity
		// across worker counts.
		if !includeNonGolden {
			continue
		}
		if s.Gauges == nil {
			s.Gauges = map[string]float64{}
		}
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs, nonGolden := h.snapshot()
		if nonGolden {
			if !includeNonGolden {
				continue
			}
			if s.NonGolden == nil {
				s.NonGolden = map[string]HistogramSnapshot{}
			}
			s.NonGolden[k] = hs
			continue
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		s.Histograms[k] = hs
	}
	return s
}

// Encode returns the snapshot as indented JSON with a trailing newline.
// Equal snapshots encode to equal bytes.
func (s Snapshot) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
