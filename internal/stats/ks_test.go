package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestKSNormalAcceptsNormal(t *testing.T) {
	r := rng.NewMarsaglia(61)
	accept := 0
	const trials = 200
	for k := 0; k < trials; k++ {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = 7 + 3*r.NormFloat64()
		}
		if !KolmogorovSmirnovNormal(xs).Significant(0.05) {
			accept++
		}
	}
	// Lilliefors-style with asymptotic p is conservative: acceptance should
	// be at least nominal.
	if accept < trials*90/100 {
		t.Fatalf("KS rejected normal data too often: %d/%d accepted", accept, trials)
	}
}

func TestKSNormalRejectsUniformTails(t *testing.T) {
	r := rng.NewMarsaglia(67)
	reject := 0
	const trials = 200
	for k := 0; k < trials; k++ {
		xs := make([]float64, 60)
		for i := range xs {
			// Strongly bimodal: far from normal.
			if r.Intn(2) == 0 {
				xs[i] = -2 + 0.1*r.NormFloat64()
			} else {
				xs[i] = 2 + 0.1*r.NormFloat64()
			}
		}
		if KolmogorovSmirnovNormal(xs).Significant(0.05) {
			reject++
		}
	}
	if reject < trials*80/100 {
		t.Fatalf("KS missed bimodality: only %d/%d rejected", reject, trials)
	}
}

func TestKS2SameDistribution(t *testing.T) {
	r := rng.NewMarsaglia(71)
	rejections := 0
	const trials = 500
	for k := 0; k < trials; k++ {
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		if KolmogorovSmirnov2(xs, ys).Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.08 {
		t.Fatalf("two-sample KS type-I rate %.3f too high", rate)
	}
}

func TestKS2DetectsShift(t *testing.T) {
	r := rng.NewMarsaglia(73)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = 1.5 + r.NormFloat64()
	}
	if res := KolmogorovSmirnov2(xs, ys); !res.Significant(0.01) {
		t.Fatalf("1.5-sigma shift not detected: p=%v", res.P)
	}
}

func TestKSDegenerateInputs(t *testing.T) {
	if !math.IsNaN(KolmogorovSmirnovNormal([]float64{1, 2}).P) {
		t.Fatal("tiny sample accepted")
	}
	if !math.IsNaN(KolmogorovSmirnovNormal([]float64{3, 3, 3, 3, 3}).P) {
		t.Fatal("zero-variance sample accepted")
	}
	if !math.IsNaN(KolmogorovSmirnov2([]float64{1}, []float64{2}).P) {
		t.Fatal("tiny two-sample accepted")
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := ksPValue(0); p != 1 {
		t.Fatalf("Q(0) = %v", p)
	}
	if p := ksPValue(5); p > 1e-6 {
		t.Fatalf("Q(5) = %v, should be ~0", p)
	}
	// Known value: Q(1.36) ≈ 0.049 (the classic 5% critical point).
	if p := ksPValue(1.36); math.Abs(p-0.049) > 0.003 {
		t.Fatalf("Q(1.36) = %v, want ~0.049", p)
	}
}
