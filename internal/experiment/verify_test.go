package experiment

import (
	"context"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/spec"
)

// verifyBench wraps a generated module as a benchmark the verifier can
// sweep.
func verifyBench(name string, seed uint64) spec.Benchmark {
	return spec.Benchmark{
		Name: name, Lang: "c", Notes: "synthetic verify fixture",
		Build: func(scale float64) *ir.Module { return ir.Generate(seed, ir.GenConfig{}) },
	}
}

func TestVerifySemantics(t *testing.T) {
	ResetCompileCache()
	benches := []spec.Benchmark{verifyBench("va", 41), verifyBench("vb", 97)}
	opts := VerifyOptions{
		Oracle: oracle.Options{Seeds: []uint64{1, 2}, Levels: []compiler.OptLevel{compiler.O0, compiler.O2}},
	}
	rep, err := VerifySemantics(context.Background(), benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean programs failed verification:\n%s", rep)
	}
	// 2 programs x 2 seeds x 2 levels x 4 allocators x 2 engines.
	if want := 2 * 2 * 2 * 4 * 2; rep.Cells != want {
		t.Fatalf("ran %d cells, want %d", rep.Cells, want)
	}
	if len(rep.Findings) != 2 || rep.Findings[0].Program != "va" || rep.Findings[1].Program != "vb" {
		t.Fatalf("findings out of order: %+v", rep.Findings)
	}
	out := rep.String()
	if !strings.Contains(out, "va") || !strings.Contains(out, "ok:") {
		t.Fatalf("summary missing ok lines:\n%s", out)
	}

	// The verify sweep populates the engine's shared compile cache: the
	// same (bench, scale, level, stabilize) key must not recompile.
	hits, misses := CompileCacheStats()
	if misses != 4 { // 2 programs x 2 levels
		t.Fatalf("compile cache misses = %d, want 4 (hits %d)", misses, hits)
	}
}

func TestVerifySemanticsExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("full example programs in -short mode")
	}
	ResetCompileCache()
	rep, err := VerifySemantics(context.Background(), spec.Examples(), VerifyOptions{
		Scale: 0.05,
		Oracle: oracle.Options{
			Seeds:  []uint64{1, 2},
			Levels: []compiler.OptLevel{compiler.O0, compiler.O1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("example programs failed verification:\n%s", rep)
	}
}

func TestVerifySemanticsReportsCompileError(t *testing.T) {
	bad := spec.Benchmark{
		Name: "bad", Lang: "c", Notes: "compile failure fixture",
		Build: func(scale float64) *ir.Module {
			panic("deliberately unbuildable")
		},
	}
	rep, err := VerifySemantics(context.Background(), []spec.Benchmark{bad}, VerifyOptions{
		Oracle: oracle.Options{Seeds: []uint64{1}, Levels: []compiler.OptLevel{compiler.O0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Findings[0].Err == nil {
		t.Fatalf("compile failure not reported: %+v", rep.Findings)
	}
	if !strings.Contains(rep.String(), "ERROR") {
		t.Fatalf("summary missing ERROR line:\n%s", rep)
	}
}
