package machine

import (
	"fmt"
	"strings"
)

// Counters is a point-in-time snapshot of every statistic the machine
// keeps, in the style of `perf stat`.
type Counters struct {
	Cycles, Instructions                 uint64
	L1IHits, L1IMisses                   uint64
	L1DHits, L1DMisses                   uint64
	L2Hits, L2Misses                     uint64
	L3Hits, L3Misses                     uint64
	TLBHits, TLBMisses                   uint64
	BranchLookups                        uint64
	DirectionMispredicts, BTBMispredicts uint64
}

// Snapshot captures the current counters.
func (m *Machine) Snapshot() Counters {
	return Counters{
		Cycles:               m.Cycles,
		Instructions:         m.Instructions,
		L1IHits:              m.L1I.Hits,
		L1IMisses:            m.L1I.Misses,
		L1DHits:              m.L1D.Hits,
		L1DMisses:            m.L1D.Misses,
		L2Hits:               m.L2.Hits,
		L2Misses:             m.L2.Misses,
		L3Hits:               m.L3.Hits,
		L3Misses:             m.L3.Misses,
		TLBHits:              m.TLB.Hits,
		TLBMisses:            m.TLB.Misses,
		BranchLookups:        m.BP.Lookups,
		DirectionMispredicts: m.BP.DirectionMispredicts,
		BTBMispredicts:       m.BP.TargetMispredicts,
	}
}

// Sub returns the counter deltas c - prev; used for windowed sampling.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Cycles:               c.Cycles - prev.Cycles,
		Instructions:         c.Instructions - prev.Instructions,
		L1IHits:              c.L1IHits - prev.L1IHits,
		L1IMisses:            c.L1IMisses - prev.L1IMisses,
		L1DHits:              c.L1DHits - prev.L1DHits,
		L1DMisses:            c.L1DMisses - prev.L1DMisses,
		L2Hits:               c.L2Hits - prev.L2Hits,
		L2Misses:             c.L2Misses - prev.L2Misses,
		L3Hits:               c.L3Hits - prev.L3Hits,
		L3Misses:             c.L3Misses - prev.L3Misses,
		TLBHits:              c.TLBHits - prev.TLBHits,
		TLBMisses:            c.TLBMisses - prev.TLBMisses,
		BranchLookups:        c.BranchLookups - prev.BranchLookups,
		DirectionMispredicts: c.DirectionMispredicts - prev.DirectionMispredicts,
		BTBMispredicts:       c.BTBMispredicts - prev.BTBMispredicts,
	}
}

// Add returns the element-wise sum c + o; used to aggregate the snapshots
// of many independent runs (e.g. the experiment pool's workers).
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:               c.Cycles + o.Cycles,
		Instructions:         c.Instructions + o.Instructions,
		L1IHits:              c.L1IHits + o.L1IHits,
		L1IMisses:            c.L1IMisses + o.L1IMisses,
		L1DHits:              c.L1DHits + o.L1DHits,
		L1DMisses:            c.L1DMisses + o.L1DMisses,
		L2Hits:               c.L2Hits + o.L2Hits,
		L2Misses:             c.L2Misses + o.L2Misses,
		L3Hits:               c.L3Hits + o.L3Hits,
		L3Misses:             c.L3Misses + o.L3Misses,
		TLBHits:              c.TLBHits + o.TLBHits,
		TLBMisses:            c.TLBMisses + o.TLBMisses,
		BranchLookups:        c.BranchLookups + o.BranchLookups,
		DirectionMispredicts: c.DirectionMispredicts + o.DirectionMispredicts,
		BTBMispredicts:       c.BTBMispredicts + o.BTBMispredicts,
	}
}

// IPC returns instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// String renders the snapshot in a perf-stat-like layout.
func (c Counters) String() string {
	var sb strings.Builder
	rate := func(miss, hit uint64) float64 {
		total := miss + hit
		if total == 0 {
			return 0
		}
		return float64(miss) / float64(total) * 100
	}
	fmt.Fprintf(&sb, "%15d cycles\n", c.Cycles)
	fmt.Fprintf(&sb, "%15d instructions        # %5.2f IPC\n", c.Instructions, c.IPC())
	fmt.Fprintf(&sb, "%15d L1I misses          # %5.2f%% of accesses\n", c.L1IMisses, rate(c.L1IMisses, c.L1IHits))
	fmt.Fprintf(&sb, "%15d L1D misses          # %5.2f%% of accesses\n", c.L1DMisses, rate(c.L1DMisses, c.L1DHits))
	fmt.Fprintf(&sb, "%15d L2 misses           # %5.2f%% of accesses\n", c.L2Misses, rate(c.L2Misses, c.L2Hits))
	fmt.Fprintf(&sb, "%15d L3 misses           # %5.2f%% of accesses\n", c.L3Misses, rate(c.L3Misses, c.L3Hits))
	fmt.Fprintf(&sb, "%15d TLB misses          # %5.2f%% of accesses\n", c.TLBMisses, rate(c.TLBMisses, c.TLBHits))
	fmt.Fprintf(&sb, "%15d branch lookups\n", c.BranchLookups)
	fmt.Fprintf(&sb, "%15d mispredicted        # direction %d, target %d\n",
		c.DirectionMispredicts+c.BTBMispredicts, c.DirectionMispredicts, c.BTBMispredicts)
	return sb.String()
}
