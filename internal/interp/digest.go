package interp

import "fmt"

// Architectural digests for the semantic-invariance oracle.
//
// A Recorder attached to a run (Options.Record) folds the program's
// observable behaviour into two streaming FNV-1a hashes:
//
//   - Arch covers only what a user could observe from outside: Sink values
//     in order, the exit status and value, and the trap kind if the run
//     faulted. It is invariant across *every* axis the oracle varies —
//     randomization seed, heap allocator, and optimization level — because
//     optimizing passes may legally add or remove stores but never change
//     what the program outputs.
//
//   - Exec additionally covers the retired execution itself: every store
//     (global, stack slot, heap object), allocation, free, call, and throw,
//     each tagged with the retired-instruction counter at which it retired.
//     It is invariant across layout axes (seed, allocator) at a *fixed*
//     optimization level, and is what lets a divergence be pinned to the
//     first diverging retired instruction.
//
// Nothing layout-dependent enters either hash: heap objects are identified
// by allocation-order handles, globals by index, stack slots by
// (function, slot) symbol — never by simulated address — and cycle counts
// and machine state are excluded entirely.

// EventKind tags one recorded event.
type EventKind uint8

const (
	// EvStoreGlobal is a store to a global; Loc is the global index.
	EvStoreGlobal EventKind = iota + 1
	// EvStoreStack is a store to a stack slot; Loc is fn<<32 | slot symbol.
	EvStoreStack
	// EvStoreHeap is a store through a heap pointer; Loc is the object
	// handle (allocation-order, layout-invariant).
	EvStoreHeap
	// EvSink is an architecturally observable output value.
	EvSink
	// EvAlloc is a heap allocation; Loc is the new handle, Val the size.
	EvAlloc
	// EvFree is a heap release; Loc is the handle.
	EvFree
	// EvCall is a control transfer; Loc is the callee function index.
	EvCall
	// EvThrow is an exception throw; Val is the thrown value.
	EvThrow
	// EvExit is the end of the run; Loc is 0 (normal return, Val the return
	// value) or 1 (uncaught exception, Val the exception value).
	EvExit
	// EvTrap is a program fault; Loc is the trap.Kind.
	EvTrap
)

var eventNames = map[EventKind]string{
	EvStoreGlobal: "store-global",
	EvStoreStack:  "store-stack",
	EvStoreHeap:   "store-heap",
	EvSink:        "sink",
	EvAlloc:       "alloc",
	EvFree:        "free",
	EvCall:        "call",
	EvThrow:       "throw",
	EvExit:        "exit",
	EvTrap:        "trap",
}

// String returns the event kind's report spelling.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return "event?"
}

// Event is one recorded execution event, in layout-invariant coordinates.
type Event struct {
	// Step is the retired-instruction counter when the event retired.
	Step uint64
	// Kind tags the event.
	Kind EventKind
	// Loc identifies the target in layout-invariant terms (see the kind
	// constants); zero when unused.
	Loc uint64
	// Off is the byte offset within the target for stores; zero otherwise.
	Off uint64
	// Val is the stored, sunk, thrown, returned, or sized value.
	Val uint64
}

// String renders the event for divergence reports.
func (e Event) String() string {
	return fmt.Sprintf("step %d %s loc=%#x off=%d val=%#x", e.Step, e.Kind, e.Loc, e.Off, e.Val)
}

// Digest summarizes one recorded run.
type Digest struct {
	// Arch is the architectural hash: sinks, exit, trap kind only.
	Arch uint64
	// Exec is the execution hash: every event with its retired step.
	Exec uint64
	// Steps is the retired-instruction count at the end of the run.
	Steps uint64
	// Events holds the full event trace when the Recorder was built with
	// NewTracer; nil for hash-only recorders.
	Events []Event
	// Truncated reports that the trace hit the tracer's capacity and
	// later events were folded into the hashes but not retained.
	Truncated bool
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fold streams vals byte-by-byte into an FNV-1a hash.
func fold(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return h
}

// Recorder accumulates a run's digest. Attach one per run via
// Options.Record; a Recorder must not be reused across runs.
type Recorder struct {
	arch      uint64
	exec      uint64
	steps     uint64
	events    []Event
	capacity  int
	truncated bool
}

// NewRecorder returns a hash-only recorder (no trace retention); this is
// the cheap mode the oracle uses for every cell of the matrix.
func NewRecorder() *Recorder {
	return &Recorder{arch: fnvOffset, exec: fnvOffset}
}

// NewTracer returns a recorder that also retains up to capacity events, for
// the divergence re-run that localizes the first mismatching instruction.
func NewTracer(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{arch: fnvOffset, exec: fnvOffset, capacity: capacity}
}

// record folds an execution-only event.
func (r *Recorder) record(step uint64, kind EventKind, loc, off, val uint64) {
	r.exec = fold(r.exec, uint64(kind), step, loc, off, val)
	r.steps = step
	r.retain(Event{Step: step, Kind: kind, Loc: loc, Off: off, Val: val})
}

// observe folds an architecturally visible event into both hashes.
func (r *Recorder) observe(step uint64, kind EventKind, loc, val uint64) {
	r.arch = fold(r.arch, uint64(kind), loc, val)
	r.record(step, kind, loc, 0, val)
}

func (r *Recorder) retain(e Event) {
	if r.capacity == 0 {
		return
	}
	if len(r.events) >= r.capacity {
		r.truncated = true
		return
	}
	r.events = append(r.events, e)
}

// Digest returns the accumulated digest. The trace (if any) is shared, not
// copied; callers must not mutate it.
func (r *Recorder) Digest() Digest {
	return Digest{
		Arch:      r.arch,
		Exec:      r.exec,
		Steps:     r.steps,
		Events:    r.events,
		Truncated: r.truncated,
	}
}
