// Package faultinject is a deterministic fault-injection harness for the
// experiment engine. Tests (and CI) activate a plan of faults — panic,
// transient error, delay, or hang — that fire at the Nth hit of a named
// call site, then drive a sweep and assert that every recovery path
// (panic isolation, watchdog timeout, transient retry) actually runs.
//
// The hook is a plain runtime check, not a build tag: instrumented sites
// call Hit, which is a single atomic load when no plan is active, so the
// production binary pays nothing measurable and CI needs no special build.
// Given the same plan and a sequential pool, the fired faults are fully
// deterministic; under a parallel pool the Nth hit is whichever worker
// gets there first, which is still bounded and race-free.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Instrumented call sites in the experiment engine.
const (
	// SitePoolWorker is hit once per pool work item, before the item runs.
	SitePoolWorker = "pool.worker"
	// SiteCellStart is hit once per compile/run cell, before collection.
	SiteCellStart = "cell.start"
	// SiteCompileCache is hit inside the compile cache, before compiling.
	SiteCompileCache = "compile.cache"
	// SiteCheckpointStore is hit before a checkpoint cell file is written.
	SiteCheckpointStore = "checkpoint.store"
)

// Instrumented protocol sites in the campaign farm. Client-side net.* sites
// are consulted (via Protocol) once per request the farm client sends;
// coordinator-side coord.* sites are hit at the top of the matching HTTP
// handler, so an armed fault there surfaces as a server 5xx.
const (
	// SiteNetSubmit is the client's campaign submission request.
	SiteNetSubmit = "net.submit"
	// SiteNetAcquire is the client's lease acquisition request.
	SiteNetAcquire = "net.acquire"
	// SiteNetHeartbeat is the client's lease heartbeat request.
	SiteNetHeartbeat = "net.heartbeat"
	// SiteNetComplete is the client's cell completion post.
	SiteNetComplete = "net.complete"
	// SiteNetRelease is the client's drain-time lease release.
	SiteNetRelease = "net.release"
	// SiteNetStatus is the client's campaign status request.
	SiteNetStatus = "net.status"
	// SiteCoordAcquire is the coordinator's lease-grant handler.
	SiteCoordAcquire = "coord.acquire"
	// SiteCoordComplete is the coordinator's completion handler.
	SiteCoordComplete = "coord.complete"
)

// Instrumented coordination-lease sites in the store. These sit inside the
// coordinator-election protocol, so chaos tests can depose an active
// coordinator (lease.steal hooks before a fence check), delay a renewal
// past the TTL (lease.renew + delay simulates a GC pause or clock skew),
// or fail an acquisition attempt; coord.persist fires before each fenced
// journal write, the deposed-write rejection point.
const (
	// SiteLeaseAcquire is hit at the top of Coordination.TryAcquire.
	SiteLeaseAcquire = "lease.acquire"
	// SiteLeaseRenew is hit at the top of LeaseHandle.Renew, before the
	// fence re-check.
	SiteLeaseRenew = "lease.renew"
	// SiteLeaseSteal is hit inside LeaseHandle.Check, before the epoch
	// comparison — a hook here can claim a newer epoch out from under the
	// holder at the worst possible moment.
	SiteLeaseSteal = "lease.steal"
	// SiteCoordPersist is hit before each fenced coordinator journal write.
	SiteCoordPersist = "coord.persist"
)

// Kind selects what a fault does when it fires.
type Kind int

const (
	// KindError returns an *Error (Transient() == true) from Hit.
	KindError Kind = iota + 1
	// KindPanic panics with a recognizable message.
	KindPanic
	// KindDelay sleeps for Fault.Delay (respecting ctx), then proceeds.
	KindDelay
	// KindHang blocks until the site's context is cancelled and returns
	// the context error — a runaway cell that only a watchdog can stop.
	KindHang
	// KindHook calls Fault.Hook and proceeds; used by tests to trigger
	// external events (e.g. a drain) at a deterministic point.
	KindHook
	// KindDrop, at a protocol site, loses the request or its response: the
	// caller sees a transport error and never learns whether the server
	// processed the exchange. At a non-protocol site it behaves as
	// KindError.
	KindDrop
	// KindDup, at a protocol site, sends the request twice — the retry the
	// network performed on the caller's behalf. Exercises idempotency:
	// duplicate completions must be deduplicated, not attempt-burned.
	KindDup
	// Kind5xx, at a protocol site, short-circuits the exchange with a 503 —
	// an overloaded proxy or crashing server. Clients must treat it as
	// retryable.
	Kind5xx
	// KindTorn, at a protocol site, truncates the response body mid-stream
	// (a torn TCP connection): the request was processed but the caller
	// cannot decode the answer.
	KindTorn
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindHang:
		return "hang"
	case KindHook:
		return "hook"
	case KindDrop:
		return "drop"
	case KindDup:
		return "dup"
	case Kind5xx:
		return "5xx"
	case KindTorn:
		return "torn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name (the String form) back to its Kind; used
// by ParseFaults.
func ParseKind(s string) (Kind, error) {
	for k := KindError; k <= KindTorn; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q", s)
}

// Fault is one rule in a plan.
type Fault struct {
	// Site names the instrumented call site the fault arms.
	Site string
	// Nth is the 1-based hit ordinal the fault fires on. 0 derives a
	// small deterministic ordinal from the plan seed and the site name.
	Nth uint64
	// Kind selects the failure mode.
	Kind Kind
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// Hook is called for KindHook.
	Hook func()
	// Repeat fires the fault on every hit >= Nth instead of exactly once.
	Repeat bool
}

// Error is the injected transient failure returned by KindError faults.
// It satisfies the Transient predicate, so the engine's retry policy
// treats it as worth retrying.
type Error struct {
	Site string
	Hit  uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected transient error at %s (hit %d)", e.Site, e.Hit)
}

// Transient marks the error as retryable.
func (e *Error) Transient() bool { return true }

// Transient reports whether any error in err's chain declares itself
// transient (worth retrying) via a `Transient() bool` method.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// plan is one activated fault set with its per-site hit counters.
type plan struct {
	faults []Fault
	mu     sync.Mutex
	hits   map[string]uint64
	fired  []bool
}

var active atomic.Pointer[plan]

// Activate installs a fault plan and returns its deactivation function.
// Faults with Nth == 0 get a deterministic ordinal in [1, 8] derived from
// seed and the site name, so seeded campaigns vary where they strike
// without losing reproducibility. Plans do not stack: activating a new
// plan replaces the previous one; the returned func removes only the plan
// it belongs to (deferred deactivation cannot clobber a newer plan).
func Activate(seed uint64, faults ...Fault) (deactivate func()) {
	p := &plan{
		faults: append([]Fault(nil), faults...),
		hits:   make(map[string]uint64),
		fired:  make([]bool, len(faults)),
	}
	for i := range p.faults {
		if p.faults[i].Nth == 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%d", seed, p.faults[i].Site, i)
			p.faults[i].Nth = 1 + h.Sum64()%8
		}
	}
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Enabled reports whether a plan is active. Sites with setup cost can use
// it to skip work; Hit already checks it.
func Enabled() bool { return active.Load() != nil }

// Hit is the runtime hook instrumented sites call. With no active plan it
// is a single atomic load. With a plan, it advances the site's hit
// counter and fires the matching fault, if any: returning an injected
// error, panicking, sleeping, hanging until ctx is done, or invoking a
// hook. ctx bounds KindDelay and KindHang; sites without a meaningful
// context should pass context.Background() (an armed KindHang would then
// block forever, which such sites document).
func Hit(ctx context.Context, site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(ctx, site)
}

// match advances the site's hit counter and returns the fault that fires on
// this hit, if any, plus the hit ordinal.
func (p *plan) match(site string) (*Fault, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits[site]++
	h := p.hits[site]
	for i := range p.faults {
		r := &p.faults[i]
		if r.Site != site {
			continue
		}
		if (r.Repeat && h >= r.Nth) || (!r.Repeat && h == r.Nth && !p.fired[i]) {
			p.fired[i] = true
			return r, h
		}
	}
	return nil, h
}

func (p *plan) hit(ctx context.Context, site string) error {
	f, h := p.match(site)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindError, KindDrop, KindDup, Kind5xx, KindTorn:
		// The protocol kinds only shape traffic at protocol sites
		// (Protocol); at a plain site they degrade to a transient error.
		return &Error{Site: site, Hit: h}
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, h))
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	case KindHang:
		<-ctx.Done()
		return ctx.Err()
	case KindHook:
		if f.Hook != nil {
			f.Hook()
		}
		return nil
	}
	return fmt.Errorf("faultinject: unknown fault kind %v at %s", f.Kind, site)
}

// Hits returns the active plan's hit count for a site (0 when no plan is
// active) — test telemetry, not control flow.
func Hits(site string) uint64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[site]
}

// NetFault is the traffic-shaping decision Protocol returns for one
// request at a protocol site. The zero value means "no fault: proceed".
type NetFault struct {
	// Drop loses the exchange: the caller must fail with a transport
	// error without learning whether the server processed the request.
	Drop bool
	// Duplicate sends the request twice (first response discarded).
	Duplicate bool
	// Status, when non-zero, short-circuits the exchange with this HTTP
	// status (a synthetic 5xx) without reaching the server.
	Status int
	// Torn truncates the response body mid-stream after a real exchange.
	Torn bool
}

// Protocol is the runtime hook for network/protocol sites (the farm
// client's requests, the coordinator's handlers). With no active plan it is
// a single atomic load and returns the zero decision. An armed KindDelay
// sleeps here (bounded by ctx); KindPanic and KindHang behave as at plain
// sites; the protocol kinds map onto the returned decision.
func Protocol(ctx context.Context, site string) NetFault {
	p := active.Load()
	if p == nil {
		return NetFault{}
	}
	f, h := p.match(site)
	if f == nil {
		return NetFault{}
	}
	switch f.Kind {
	case KindDrop, KindError:
		return NetFault{Drop: true}
	case KindDup:
		return NetFault{Duplicate: true}
	case Kind5xx:
		return NetFault{Status: 503}
	case KindTorn:
		return NetFault{Torn: true}
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return NetFault{Drop: true}
		}
		return NetFault{}
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, h))
	case KindHang:
		<-ctx.Done()
		return NetFault{Drop: true}
	case KindHook:
		if f.Hook != nil {
			f.Hook()
		}
		return NetFault{}
	}
	return NetFault{}
}

// ParseFaults parses a textual fault plan — the SZ_FAULTS wire format used
// to arm chaos runs of the farm CLIs without recompiling. Entries are
// semicolon-separated; each is
//
//	site:kind[:nth[:repeat]]
//
// where kind is one of error, panic, delay=<duration>, hang, hook (no-op
// from text), drop, dup, 5xx, torn; nth is the 1-based hit ordinal (0 or
// absent derives one from the plan seed); and the literal "repeat" fires
// the fault on every hit >= nth. Example:
//
//	net.complete:dup:1;net.acquire:drop:2:repeat;coord.complete:5xx:3
func ParseFaults(s string) ([]Fault, error) {
	var out []Fault
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultinject: entry %q: want site:kind[:nth[:repeat]]", entry)
		}
		f := Fault{Site: parts[0]}
		kind := parts[1]
		if d, ok := strings.CutPrefix(kind, "delay="); ok {
			dur, err := time.ParseDuration(d)
			if err != nil {
				return nil, fmt.Errorf("faultinject: entry %q: bad delay: %v", entry, err)
			}
			f.Kind, f.Delay = KindDelay, dur
		} else {
			k, err := ParseKind(kind)
			if err != nil {
				return nil, fmt.Errorf("faultinject: entry %q: %v", entry, err)
			}
			if k == KindDelay {
				return nil, fmt.Errorf("faultinject: entry %q: delay needs a duration (delay=200ms)", entry)
			}
			f.Kind = k
		}
		if len(parts) >= 3 && parts[2] != "" {
			n, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: entry %q: bad nth: %v", entry, err)
			}
			f.Nth = n
		}
		if len(parts) >= 4 {
			if parts[3] != "repeat" {
				return nil, fmt.Errorf("faultinject: entry %q: trailing field must be \"repeat\"", entry)
			}
			f.Repeat = true
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault plan %q", s)
	}
	return out, nil
}
