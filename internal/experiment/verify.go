package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/spec"
)

// VerifyOptions configures a semantic-invariance pre-flight over a set of
// benchmarks.
type VerifyOptions struct {
	// Oracle is passed through to each program's verification matrix
	// (zero value = oracle defaults: 3 seeds x O0-O3 x 4 allocators).
	Oracle oracle.Options
	// Scale is the benchmark scale factor (default 1.0).
	Scale float64
	// Workers sizes the pool (0 = GOMAXPROCS).
	Workers int
}

// VerifyFinding is one program's verification outcome.
type VerifyFinding struct {
	Program string
	Result  *oracle.Result
	// Divergence is non-nil when the program failed semantic invariance.
	Divergence *oracle.Divergence
	// Err is non-nil for infrastructure failures (compile error, step
	// budget, stack overflow).
	Err error
}

// VerifyReport aggregates a sweep; Findings are in input order.
type VerifyReport struct {
	Findings []VerifyFinding
	Cells    int
}

// Failed reports whether any program diverged or errored.
func (r *VerifyReport) Failed() bool {
	for _, f := range r.Findings {
		if f.Divergence != nil || f.Err != nil {
			return true
		}
	}
	return false
}

// String renders a one-line-per-program summary, with full divergence
// reports appended for failures.
func (r *VerifyReport) String() string {
	var sb strings.Builder
	for _, f := range r.Findings {
		switch {
		case f.Divergence != nil:
			fmt.Fprintf(&sb, "%-14s DIVERGED (%s axis)\n", f.Program, f.Divergence.Axis)
		case f.Err != nil:
			fmt.Fprintf(&sb, "%-14s ERROR: %v\n", f.Program, f.Err)
		default:
			fmt.Fprintf(&sb, "%-14s ok: %d cells, arch=%016x\n", f.Program, f.Result.Cells, f.Result.Arch)
		}
	}
	for _, f := range r.Findings {
		if f.Divergence != nil {
			sb.WriteString("\n")
			sb.WriteString(f.Divergence.Report())
		}
	}
	return sb.String()
}

// VerifySemantics runs the semantic-invariance oracle over every benchmark,
// one pool worker per program, reusing the engine's compile cache (each
// level's module is compiled at most once per process, shared with any
// later experiment runs at the same level). It is the implementation of the
// experiment driver's -verify-semantics pre-flight and the stabilizer
// verify subcommand.
func VerifySemantics(ctx context.Context, benches []spec.Benchmark, opts VerifyOptions) (*VerifyReport, error) {
	endSpan := obsTrace().Span("verify", "semantic-invariance", map[string]any{"programs": len(benches)})
	defer endSpan()
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	oopts := opts.Oracle
	if len(oopts.Levels) == 0 {
		oopts.Levels = compiler.Levels()
	}

	rep := &VerifyReport{Findings: make([]VerifyFinding, len(benches))}
	var mu sync.Mutex
	pool := NewPool(opts.Workers)
	err := pool.ForEachLabeled(ctx, "verify", len(benches), func(ctx context.Context, i int) error {
		b := benches[i]
		f := VerifyFinding{Program: b.Name}
		mods := make(map[compiler.OptLevel]*ir.Module, len(oopts.Levels))
		for _, lv := range oopts.Levels {
			m, err := compileCached(b, opts.Scale, compiler.Options{Level: lv, Stabilize: true})
			if err != nil {
				f.Err = fmt.Errorf("compiling at %s: %w", lv, err)
				break
			}
			mods[lv] = m
		}
		if f.Err == nil {
			res, err := oracle.VerifyCompiled(b.Name, mods, oopts)
			var div *oracle.Divergence
			switch {
			case err == nil:
				f.Result = res
				mu.Lock()
				rep.Cells += res.Cells
				mu.Unlock()
			case errors.As(err, &div):
				f.Divergence = div
			default:
				f.Err = err
			}
		}
		mu.Lock()
		rep.Findings[i] = f
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
