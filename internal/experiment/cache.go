package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/spec"
)

// Modules are read-only once compiler.Compile returns (it clones its input
// and nothing downstream writes), so cells that share a benchmark, scale,
// optimization level, and stabilize flag can link and run from one compiled
// module instead of recompiling. The cache is keyed on exactly those four
// inputs; benchmark names must map to a stable Build function, which holds
// for the spec suite and the synthetic test benchmarks.

type compileKey struct {
	bench     string
	scale     float64
	level     compiler.OptLevel
	stabilize bool
}

// cacheEntry compiles once per key; concurrent requesters wait on the Once.
type cacheEntry struct {
	once     sync.Once
	mod      *ir.Module
	err      error
	poisoned bool // err came from a recovered panic, not a clean failure
}

var compileCache = struct {
	mu           sync.Mutex
	entries      map[compileKey]*cacheEntry
	hits, misses uint64
	evictions    uint64
	poisoned     uint64 // evictions of panic-poisoned entries
}{entries: map[compileKey]*cacheEntry{}}

// compileCached returns the compiled module for the key, compiling at most
// once per key even under concurrent callers.
func compileCached(b spec.Benchmark, scale float64, copts compiler.Options) (*ir.Module, error) {
	key := compileKey{bench: b.Name, scale: scale, level: copts.Level, stabilize: copts.Stabilize}
	compileCache.mu.Lock()
	e, ok := compileCache.entries[key]
	if ok {
		compileCache.hits++
		obsMetrics().Counter("compile.cache.hits").Inc()
	} else {
		compileCache.misses++
		obsMetrics().Counter("compile.cache.misses").Inc()
		e = &cacheEntry{}
		compileCache.entries[key] = e
	}
	compileCache.mu.Unlock()
	e.once.Do(func() {
		done := obsTrace().Span("compile", b.Name, map[string]any{
			"scale": scale, "level": copts.Level.String(), "stabilize": copts.Stabilize,
		})
		defer done()
		// A panic while building or compiling must not take down the
		// sweep — and must not leave the entry looking "compiled to nil":
		// convert it to an error like any other compile failure.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiment: compile %s: panic: %v", b.Name, r)
				e.poisoned = true
			}
		}()
		// The fault site has no per-run context; an armed KindHang here
		// would block forever, so plans use KindError/KindPanic.
		if err := faultinject.Hit(context.Background(), faultinject.SiteCompileCache); err != nil {
			e.err = err
			return
		}
		e.mod, e.err = compiler.Compile(b.Build(scale), copts)
	})
	if e.err != nil {
		// Never cache a failure: a transient fault (injected or
		// otherwise) must not poison the key forever. Only evict the
		// entry if it is still ours — a concurrent caller may already
		// have replaced it with a fresh attempt.
		compileCache.mu.Lock()
		if compileCache.entries[key] == e {
			delete(compileCache.entries, key)
			compileCache.evictions++
			obsMetrics().Counter("compile.cache.evictions").Inc()
			if e.poisoned {
				compileCache.poisoned++
				obsMetrics().Counter("compile.cache.poisoned_evictions").Inc()
			}
		}
		compileCache.mu.Unlock()
		obsLog().Warn("compile cache evicted failed entry",
			obsF("bench", b.Name), obsF("poisoned", e.poisoned), obsF("err", e.err.Error()))
	}
	return e.mod, e.err
}

// CompileCacheStats reports cumulative cache hits and misses.
func CompileCacheStats() (hits, misses uint64) {
	compileCache.mu.Lock()
	defer compileCache.mu.Unlock()
	return compileCache.hits, compileCache.misses
}

// CompileCacheEvictions reports cumulative failed-entry evictions, and how
// many of those entries were poisoned by a recovered panic.
func CompileCacheEvictions() (evictions, poisoned uint64) {
	compileCache.mu.Lock()
	defer compileCache.mu.Unlock()
	return compileCache.evictions, compileCache.poisoned
}

// ResetCompileCache drops every cached module and zeroes the stats.
func ResetCompileCache() {
	compileCache.mu.Lock()
	defer compileCache.mu.Unlock()
	compileCache.entries = map[compileKey]*cacheEntry{}
	compileCache.hits, compileCache.misses = 0, 0
	compileCache.evictions, compileCache.poisoned = 0, 0
}
