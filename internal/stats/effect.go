package stats

import "math"

// Effect sizes for the regression gate. A p-value alone answers "is there
// any difference?"; the gate also wants "how big is it?" — Cohen's d for the
// parametric path and Cliff's delta for the rank-based one (Kalibera &
// Jones's argument for effect-size reporting).

// CohensD returns Cohen's d for two independent samples: the difference of
// means (ys - xs) divided by the pooled standard deviation. Positive values
// mean ys is larger. NaN when either sample has fewer than two values or
// both variances are zero.
func CohensD(xs, ys []float64) float64 {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return math.NaN()
	}
	vx, vy := Variance(xs), Variance(ys)
	sp2 := ((nx-1)*vx + (ny-1)*vy) / (nx + ny - 2)
	if sp2 == 0 {
		return math.NaN()
	}
	return (Mean(ys) - Mean(xs)) / math.Sqrt(sp2)
}

// CliffsDelta returns Cliff's delta for two independent samples: the
// probability that a value drawn from ys exceeds one drawn from xs, minus
// the reverse. It ranges over [-1, 1]; 0 means stochastic equality, +1 means
// every y exceeds every x. NaN when either sample is empty.
func CliffsDelta(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	more, less := 0, 0
	for _, y := range ys {
		for _, x := range xs {
			switch {
			case y > x:
				more++
			case y < x:
				less++
			}
		}
	}
	return float64(more-less) / float64(len(xs)*len(ys))
}
