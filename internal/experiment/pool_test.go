package experiment

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
)

// withParallelism runs f under a fixed default worker count.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

func TestPoolForEachCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 7, 16, n + 5} {
		pool := NewPool(workers)
		counts := make([]int32, n)
		err := pool.ForEach(context.Background(), n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolFirstErrorCancels(t *testing.T) {
	const n = 10_000
	boom := errors.New("seed 0 exploded")
	pool := NewPool(4)
	var executed atomic.Int64
	err := pool.ForEach(context.Background(), n, func(_ context.Context, i int) error {
		if i == 0 {
			return boom
		}
		executed.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got error %v, want %v", err, boom)
	}
	if got := executed.Load(); got >= n/2 {
		t.Fatalf("%d of %d items still ran after the failure — cancellation inert?", got, n)
	}
}

func TestPoolRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := NewPool(4)
	var executed atomic.Int64
	err := pool.ForEach(ctx, 100, func(_ context.Context, i int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPoolZeroItems(t *testing.T) {
	if err := NewPool(4).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesParallelMatchesSequential(t *testing.T) {
	b := subset(t, "astar")[0]
	st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 20_000}
	for _, cfg := range []Config{
		{Scale: testScale, Level: compiler.O2},
		{Scale: testScale, Level: compiler.O2, Stabilizer: &st},
	} {
		cc, err := CompileBench(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var seq, par []float64
		withParallelism(t, 1, func() {
			seq, err = cc.Samples(16, 42)
		})
		if err != nil {
			t.Fatal(err)
		}
		withParallelism(t, 8, func() {
			par, err = cc.Samples(16, 42)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel samples differ from sequential:\nseq %v\npar %v", seq, par)
		}
	}
}

func TestCollectAggregatesCounters(t *testing.T) {
	b := subset(t, "lbm")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := cc.Collect(context.Background(), 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Seconds) != 5 || len(ss.Results) != 5 {
		t.Fatalf("lengths: %d seconds, %d results", len(ss.Seconds), len(ss.Results))
	}
	var cycles, instrs uint64
	for _, r := range ss.Results {
		cycles += r.Counters.Cycles
		instrs += r.Counters.Instructions
	}
	if ss.Counters.Cycles != cycles || ss.Counters.Instructions != instrs {
		t.Fatalf("aggregate counters %+v do not sum the per-run snapshots", ss.Counters)
	}
	if ss.Counters.Cycles == 0 {
		t.Fatal("aggregate counters empty")
	}
}

func TestSamplesErrorPropagation(t *testing.T) {
	b := subset(t, "astar")[0]
	// A step budget far below the benchmark's instruction count makes every
	// run fail; the pool must surface the error, not hang or panic.
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	withParallelism(t, 8, func() {
		_, err = cc.Samples(64, 1)
	})
	if err == nil {
		t.Fatal("expected an error from the exhausted step budget")
	}
	if !strings.Contains(err.Error(), "astar") {
		t.Fatalf("error %q does not identify the benchmark", err)
	}
}

// TestSweepDeterminismAcrossParallelism asserts the tentpole guarantee:
// every sweep entry point returns byte-identical results at any worker
// count. Each pair below runs once sequentially and once on 8 workers and
// the full result structs must be deeply equal.
func TestSweepDeterminismAcrossParallelism(t *testing.T) {
	sweeps := []struct {
		name string
		run  func() (any, error)
	}{
		{"normality", func() (any, error) {
			return Normality(context.Background(), NormalityOptions{Scale: testScale, Runs: 6, Seed: 1, Suite: subset(t, "astar", "lbm")})
		}},
		{"overhead", func() (any, error) {
			return Overhead(context.Background(), OverheadOptions{Scale: testScale, Runs: 4, Seed: 1, Suite: subset(t, "lbm")})
		}},
		{"speedup", func() (any, error) {
			return Speedup(context.Background(), SpeedupOptions{Scale: testScale, Runs: 4, Seed: 1, Suite: subset(t, "libquantum", "sjeng")})
		}},
		{"interval", func() (any, error) {
			return RerandInterval(context.Background(), IntervalAblationOptions{Scale: testScale, Runs: 4, Seed: 5, Intervals: []uint64{0, 25_000}})
		}},
		{"shuffledepth", func() (any, error) {
			return ShuffleDepth(context.Background(), ShuffleDepthOptions{Scale: testScale, Runs: 3, Seed: 5, Depths: []int{1, 256}})
		}},
		{"adaptive", func() (any, error) {
			return Adaptive(context.Background(), AdaptiveOptions{Scale: testScale, Runs: 3, Seed: 5, Interval: 20_000})
		}},
		{"nist", func() (any, error) {
			// Values must give the Rank test enough 32x32 matrices
			// (>=38) or its p-value is NaN, which DeepEqual rejects.
			return NIST(context.Background(), NISTOptions{Values: 8000, Seed: 3, ShuffleN: []int{1, 16}})
		}},
		{"linkorder", func() (any, error) {
			return LinkOrder(context.Background(), LinkOrderOptions{Scale: testScale, Orders: 5, Runs: 1, Seed: 1, Suite: subset(t, "gobmk")})
		}},
		{"envsize", func() (any, error) {
			return EnvSize(context.Background(), EnvSizeOptions{Scale: testScale, Runs: 2, Seed: 1, EnvSizes: []uint64{0, 1024}, Suite: subset(t, "sjeng")})
		}},
		{"deployment", func() (any, error) {
			return Deployment(context.Background(), DeploymentOptions{Scale: testScale, Samples: 6, Seed: 3, Suite: subset(t, "gobmk")})
		}},
	}
	for _, sw := range sweeps {
		t.Run(sw.name, func(t *testing.T) {
			var seq, par any
			var err1, err2 error
			withParallelism(t, 1, func() { seq, err1 = sw.run() })
			if err1 != nil {
				t.Fatal(err1)
			}
			withParallelism(t, 8, func() { par, err2 = sw.run() })
			if err2 != nil {
				t.Fatal(err2)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel result differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

func TestCompileCacheHit(t *testing.T) {
	ResetCompileCache()
	b := subset(t, "mcf")[0]
	c1, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Module != c2.Module {
		t.Fatal("identical configurations did not share a compiled module")
	}
	hits, misses := CompileCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats after repeat compile: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different optimization level is a different cell.
	c3, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O3})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Module == c1.Module {
		t.Fatal("different levels shared a module")
	}
	// Stabilized compiles differ from native ones even at the same level.
	st := core.Options{Code: true}
	c4, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, Stabilizer: &st})
	if err != nil {
		t.Fatal(err)
	}
	if c4.Module == c1.Module {
		t.Fatal("stabilized compile shared the native module")
	}
	// But two stabilized configs with different runtime options share one:
	// the module depends only on the stabilize flag, not the option set.
	rr := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true}
	c5, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, Stabilizer: &rr})
	if err != nil {
		t.Fatal(err)
	}
	if c5.Module != c4.Module {
		t.Fatal("stabilized configs with the same compile inputs did not share a module")
	}
	hits, misses = CompileCacheStats()
	if misses != 3 {
		t.Fatalf("misses=%d, want 3 (O2 native, O3 native, O2 stabilized)", misses)
	}
	if hits != 2 {
		t.Fatalf("hits=%d, want 2", hits)
	}
}

func TestConfigValidation(t *testing.T) {
	b := subset(t, "astar")[0]
	for _, bad := range []Config{
		{Scale: testScale, Noise: 1.5},
		{Scale: testScale, Noise: math.NaN()},
		{Scale: testScale, Noise: math.Inf(1)},
		{Scale: -1},
	} {
		if _, err := CompileBench(b, bad); err == nil {
			t.Errorf("config %+v accepted, want an error", bad)
		}
	}
	// The documented sentinels still work.
	for _, good := range []float64{0, -1, 0.01, 1} {
		if _, err := CompileBench(b, Config{Scale: testScale, Noise: good}); err != nil {
			t.Errorf("Noise=%v rejected: %v", good, err)
		}
	}
}

func TestParallelismDefaultsAndOverride(t *testing.T) {
	if Parallelism() < 1 {
		t.Fatalf("default parallelism %d", Parallelism())
	}
	prev := Parallelism()
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("override ignored: %d", Parallelism())
	}
	SetParallelism(0) // restore the environment default
	if Parallelism() < 1 {
		t.Fatalf("reset parallelism %d", Parallelism())
	}
	SetParallelism(prev)
	if NewPool(0).Workers() != prev {
		t.Fatalf("NewPool(0) workers %d, want %d", NewPool(0).Workers(), prev)
	}
	if NewPool(5).Workers() != 5 {
		t.Fatal("explicit worker count ignored")
	}
}
