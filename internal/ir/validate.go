package ir

import (
	"fmt"
	"strings"
)

// Validate checks structural invariants of a module: every block terminated,
// branch targets in range, register and symbol indices valid, call arities
// matching, and an entry function present. Passes run it after transforming.
func (m *Module) Validate() error {
	if len(m.Funcs) == 0 {
		return fmt.Errorf("ir: module %s has no functions", m.Name)
	}
	for fi, f := range m.Funcs {
		if err := m.validateFunc(fi, f); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) validateFunc(fi int, f *Function) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("ir: %s (fn %d): %s", f.Name, fi, fmt.Sprintf(format, args...))
	}
	if f.Params > f.NumRegs {
		return errf("%d params but only %d registers", f.Params, f.NumRegs)
	}
	if len(f.Blocks) == 0 {
		return errf("no blocks")
	}
	checkReg := func(r Reg, what string, bi, ii int) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return errf("block %d instr %d: %s register %d out of range", bi, ii, what, r)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			if in.Op == OpNop {
				continue
			}
			if in.Op >= opCount {
				return errf("block %d instr %d: bad opcode %d", bi, ii, in.Op)
			}
			for _, c := range []struct {
				r    Reg
				what string
			}{{in.Dst, "dst"}, {in.A, "A"}, {in.B, "B"}} {
				if err := checkReg(c.r, c.what, bi, ii); err != nil {
					return err
				}
			}
			for _, a := range in.Args {
				if err := checkReg(a, "arg", bi, ii); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpLoadG, OpStoreG, OpLoadGF, OpStoreGF:
				if int(in.Sym) < 0 || int(in.Sym) >= len(m.Globals) {
					return errf("block %d instr %d: global %d out of range", bi, ii, in.Sym)
				}
			case OpLoadS, OpStoreS, OpLoadSF, OpStoreSF:
				if int(in.Sym) < 0 || int(in.Sym) >= len(f.Slots) {
					return errf("block %d instr %d: stack slot %d out of range", bi, ii, in.Sym)
				}
			case OpCall:
				if int(in.Sym) < 0 || int(in.Sym) >= len(m.Funcs) {
					return errf("block %d instr %d: callee %d out of range", bi, ii, in.Sym)
				}
				callee := m.Funcs[in.Sym]
				if len(in.Args) != callee.Params {
					return errf("block %d instr %d: call to %s with %d args, want %d",
						bi, ii, callee.Name, len(in.Args), callee.Params)
				}
				if h := int(in.Imm) - 1; in.Imm != 0 && (h < 0 || h >= len(f.Blocks)) {
					return errf("block %d instr %d: invoke handler %d out of range", bi, ii, h)
				}
			}
		}
		switch b.Term.Kind {
		case TermNone:
			return errf("block %d not terminated", bi)
		case TermJmp:
			if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) {
				return errf("block %d: jump target %d out of range", bi, b.Term.Then)
			}
		case TermBr:
			if err := checkReg(b.Term.Cond, "cond", bi, -1); err != nil {
				return err
			}
			if b.Term.Cond == NoReg {
				return errf("block %d: conditional branch without condition", bi)
			}
			if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) ||
				b.Term.Else < 0 || b.Term.Else >= len(f.Blocks) {
				return errf("block %d: branch targets (%d,%d) out of range", bi, b.Term.Then, b.Term.Else)
			}
		case TermRet:
			if err := checkReg(b.Term.Val, "ret", bi, -1); err != nil {
				return err
			}
		default:
			return errf("block %d: bad terminator kind %d", bi, b.Term.Kind)
		}
	}
	return nil
}

// String renders the module in a readable assembly-like form.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for gi, g := range m.Globals {
		fmt.Fprintf(&sb, "  global @%d %s [%d bytes]\n", gi, g.Name, g.Size)
	}
	for fi, f := range m.Funcs {
		fmt.Fprintf(&sb, "fn %d %s(params=%d regs=%d)", fi, f.Name, f.Params, f.NumRegs)
		if f.NoRelocate {
			sb.WriteString(" norelocate")
		}
		sb.WriteString("\n")
		for si, s := range f.Slots {
			fmt.Fprintf(&sb, "  slot %d %s [%d bytes @%d]\n", si, s.Name, s.Size, s.Off)
		}
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, " b%d:\n", bi)
			for _, in := range b.Instrs {
				if in.Op == OpNop {
					continue
				}
				fmt.Fprintf(&sb, "    %s\n", formatInstr(in))
			}
			fmt.Fprintf(&sb, "    %s\n", formatTerm(b.Term))
		}
	}
	return sb.String()
}

func regStr(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", r)
}

func formatInstr(in Instr) string {
	switch {
	case in.Op == OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = regStr(a)
		}
		return fmt.Sprintf("%s = call f%d(%s)", regStr(in.Dst), in.Sym, strings.Join(args, ", "))
	case in.Op.IsStore():
		return fmt.Sprintf("%s [sym=%d imm=%d idx=%s] val=%s a=%s",
			in.Op, in.Sym, in.Imm, regStr(in.B), regStr(in.Dst), regStr(in.A))
	default:
		return fmt.Sprintf("%s = %s %s, %s (imm=%d sym=%d)",
			regStr(in.Dst), in.Op, regStr(in.A), regStr(in.B), in.Imm, in.Sym)
	}
}

func formatTerm(t Terminator) string {
	switch t.Kind {
	case TermJmp:
		return fmt.Sprintf("jmp b%d", t.Then)
	case TermBr:
		return fmt.Sprintf("br %s, b%d, b%d", regStr(t.Cond), t.Then, t.Else)
	case TermRet:
		return fmt.Sprintf("ret %s", regStr(t.Val))
	}
	return "<unterminated>"
}

// Clone returns a deep copy of the module. Pipelines clone before mutating so
// that one source module can be compiled at several optimization levels.
func (m *Module) Clone() *Module {
	nm := &Module{Name: m.Name}
	nm.Globals = make([]Global, len(m.Globals))
	for i, g := range m.Globals {
		ng := g
		ng.Init = append([]int64(nil), g.Init...)
		nm.Globals[i] = ng
	}
	nm.Funcs = make([]*Function, len(m.Funcs))
	for i, f := range m.Funcs {
		nf := &Function{
			Name:       f.Name,
			Params:     f.Params,
			NumRegs:    f.NumRegs,
			FrameSize:  f.FrameSize,
			Size:       f.Size,
			NoRelocate: f.NoRelocate,
		}
		nf.Slots = append([]StackSlot(nil), f.Slots...)
		nf.Blocks = make([]*Block, len(f.Blocks))
		for bi, b := range f.Blocks {
			nb := &Block{Term: b.Term, Off: b.Off, Size: b.Size, Live: b.Live}
			nb.Instrs = make([]Instr, len(b.Instrs))
			for ii, in := range b.Instrs {
				ni := in
				ni.Args = append([]Reg(nil), in.Args...)
				nb.Instrs[ii] = ni
			}
			nf.Blocks[bi] = nb
		}
		nm.Funcs[i] = nf
	}
	return nm
}
