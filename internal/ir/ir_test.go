package ir

import (
	"strings"
	"testing"
)

// buildSquare builds a module computing and sinking n*n in a loop.
func buildSquare() *Module {
	mb := NewModuleBuilder("square")
	g := mb.Global("acc", 8)

	sq := mb.Func("square", 1)
	x := sq.Param(0)
	sq.Ret(sq.Mul(x, x))

	main := mb.Func("main", 0)
	main.LoopN(10, func(i Reg) {
		v := main.Call(sq.Index(), i)
		old := main.LoadG(g, 0, NoReg)
		main.StoreG(g, 0, NoReg, main.Add(old, v))
	})
	main.Sink(main.LoadG(g, 0, NoReg))
	main.Ret(NoReg)
	return mb.Module()
}

func TestBuilderProducesValidModule(t *testing.T) {
	m := buildSquare()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestEntryResolution(t *testing.T) {
	m := buildSquare()
	if m.Entry() != m.FuncIndex("main") {
		t.Fatal("Entry did not find main")
	}
	if m.FuncIndex("nonexistent") != -1 {
		t.Fatal("FuncIndex invented a function")
	}
}

func TestFinalizeFrameLayout(t *testing.T) {
	mb := NewModuleBuilder("frames")
	f := mb.Func("f", 0)
	a := f.Slot("a", 8)
	b := f.Slot("b", 24)
	c := f.Slot("c", 3) // rounds to 8
	f.Ret(NoReg)
	m := mb.Module()
	fn := m.Funcs[0]
	if fn.Slots[a].Off != 0 || fn.Slots[b].Off != 8 || fn.Slots[c].Off != 32 {
		t.Fatalf("slot offsets %v", fn.Slots)
	}
	if fn.FrameSize != 40+16 {
		t.Fatalf("frame size %d, want 56", fn.FrameSize)
	}
}

func TestValidateCatchesUnterminatedBlock(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.ConstI(1) // no terminator
	m := mb.Module()
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Fatalf("unterminated block not caught: %v", err)
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.Jmp(99)
	if err := mb.Module().Validate(); err == nil {
		t.Fatal("bad jump target not caught")
	}
	_ = f
}

func TestValidateCatchesArityMismatch(t *testing.T) {
	mb := NewModuleBuilder("bad")
	callee := mb.Func("callee", 2)
	callee.Ret(NoReg)
	caller := mb.Func("main", 0)
	one := caller.ConstI(1)
	caller.Call(callee.Index(), one) // missing second arg
	caller.Ret(NoReg)
	if err := mb.Module().Validate(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("arity mismatch not caught: %v", err)
	}
}

func TestValidateCatchesBadGlobal(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.LoadG(5, 0, NoReg) // no globals declared
	f.Ret(NoReg)
	if err := mb.Module().Validate(); err == nil || !strings.Contains(err.Error(), "global") {
		t.Fatalf("bad global not caught: %v", err)
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.Ret(Reg(42)) // register never allocated
	if err := mb.Module().Validate(); err == nil {
		t.Fatal("out-of-range register not caught")
	}
}

func TestEmitIntoTerminatedBlockPanics(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.Ret(NoReg)
	defer func() {
		if recover() == nil {
			t.Fatal("emit into terminated block did not panic")
		}
	}()
	f.ConstI(1)
}

func TestDoubleTerminatePanics(t *testing.T) {
	mb := NewModuleBuilder("bad")
	f := mb.Func("f", 0)
	f.Ret(NoReg)
	defer func() {
		if recover() == nil {
			t.Fatal("double terminate did not panic")
		}
	}()
	f.Ret(NoReg)
}

func TestCloneIsDeep(t *testing.T) {
	m := buildSquare()
	c := m.Clone()
	// Mutate the clone thoroughly.
	c.Funcs[0].Blocks[0].Instrs = nil
	c.Funcs[0].Name = "mutated"
	c.Globals[0].Size = 999
	if m.Funcs[0].Name == "mutated" || len(m.Funcs[0].Blocks[0].Instrs) == 0 || m.Globals[0].Size == 999 {
		t.Fatal("clone aliases original")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestCloneEquivalentStructure(t *testing.T) {
	m := buildSquare()
	c := m.Clone()
	if m.String() != c.String() {
		t.Fatal("clone renders differently from original")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoadH.IsLoad() || OpStoreH.IsLoad() {
		t.Fatal("IsLoad wrong")
	}
	if !OpStoreGF.IsStore() || OpLoadG.IsStore() {
		t.Fatal("IsStore wrong")
	}
	if !OpFAdd.IsFloat() || OpAdd.IsFloat() {
		t.Fatal("IsFloat wrong")
	}
	if !OpCall.HasSideEffects() || OpAdd.HasSideEffects() {
		t.Fatal("HasSideEffects wrong")
	}
	if !OpSink.HasSideEffects() || !OpFree.HasSideEffects() {
		t.Fatal("side-effect ops misclassified")
	}
}

func TestEncodedSizesPositive(t *testing.T) {
	for op := OpConstI; op < opCount; op++ {
		if op.EncodedSize() == 0 {
			t.Errorf("op %s has zero encoded size", op)
		}
	}
	if OpNop.EncodedSize() != 0 {
		t.Error("nop should be free")
	}
}

func TestLoopStructure(t *testing.T) {
	mb := NewModuleBuilder("loop")
	f := mb.Func("main", 0)
	bodies := 0
	f.LoopN(5, func(i Reg) { bodies++; f.Sink(i) })
	f.Ret(NoReg)
	if bodies != 1 {
		t.Fatal("loop body callback invoked more than once at build time")
	}
	m := mb.Module()
	if err := m.Validate(); err != nil {
		t.Fatalf("loop module invalid: %v", err)
	}
	// Entry + header + body + exit.
	if len(m.Funcs[0].Blocks) != 4 {
		t.Fatalf("loop emitted %d blocks, want 4", len(m.Funcs[0].Blocks))
	}
}

func TestIfStructure(t *testing.T) {
	mb := NewModuleBuilder("if")
	f := mb.Func("main", 0)
	c := f.ConstI(1)
	thenRan, elseRan := false, false
	f.If(c, func() { thenRan = true; f.Sink(f.ConstI(1)) }, func() { elseRan = true })
	f.Ret(NoReg)
	if !thenRan || !elseRan {
		t.Fatal("If did not invoke both builders")
	}
	if err := mb.Module().Validate(); err != nil {
		t.Fatalf("if module invalid: %v", err)
	}
}

func TestStringRendersAllInstrs(t *testing.T) {
	s := buildSquare().String()
	for _, want := range []string{"module square", "fn 0 square", "call f0", "storeg", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}
