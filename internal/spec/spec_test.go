package spec_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/spec"
)

const testScale = 0.05

func runBench(t *testing.T, b spec.Benchmark, stabilize bool, seed uint64) interp.Result {
	t.Helper()
	src := b.Build(testScale)
	m, err := compiler.Compile(src, compiler.Options{Level: compiler.O2, Stabilize: stabilize})
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatalf("%s: link: %v", b.Name, err)
	}
	mach := machine.New(machine.DefaultConfig())
	var rt interp.Runtime
	if stabilize {
		st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.AllRandomizations(seed))
		if err != nil {
			t.Fatalf("%s: stabilizer: %v", b.Name, err)
		}
		rt = st
	} else {
		rt = &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewTLSF(as, 1<<22),
			Mach:        mach,
		}
	}
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return res
}

func TestSuiteHas18Benchmarks(t *testing.T) {
	s := spec.Suite()
	if len(s) != 18 {
		t.Fatalf("suite has %d benchmarks, want 18", len(s))
	}
	want := map[string]bool{
		"astar": true, "bzip2": true, "cactusADM": true, "gcc": true,
		"gobmk": true, "gromacs": true, "h264ref": true, "hmmer": true,
		"lbm": true, "libquantum": true, "mcf": true, "milc": true,
		"namd": true, "perlbench": true, "sjeng": true, "sphinx3": true,
		"wrf": true, "zeusmp": true,
	}
	for _, b := range s {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark %q", b.Name)
		}
		delete(want, b.Name)
		if b.Lang != "c" && b.Lang != "fortran" {
			t.Errorf("%s: bad language %q", b.Name, b.Lang)
		}
		if b.Notes == "" {
			t.Errorf("%s: missing notes", b.Name)
		}
	}
	for name := range want {
		t.Errorf("missing benchmark %q", name)
	}
}

func TestByName(t *testing.T) {
	if _, ok := spec.ByName("mcf"); !ok {
		t.Fatal("mcf not found")
	}
	if _, ok := spec.ByName("doom"); ok {
		t.Fatal("nonexistent benchmark found")
	}
	if len(spec.Names()) != 18 {
		t.Fatal("Names() wrong length")
	}
}

func TestAllBenchmarksValidate(t *testing.T) {
	for _, b := range spec.Suite() {
		m := b.Build(testScale)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if m.Entry() < 0 || m.Funcs[m.Entry()].Name != "main" {
			t.Errorf("%s: no main entry", b.Name)
		}
	}
}

func TestAllBenchmarksRunNatively(t *testing.T) {
	for _, b := range spec.Suite() {
		res := runBench(t, b, false, 0)
		if res.Instructions == 0 || res.Cycles == 0 {
			t.Errorf("%s: empty run (%d instrs)", b.Name, res.Instructions)
		}
		if res.Output == 0 {
			t.Errorf("%s: zero output checksum — benchmark result unused?", b.Name)
		}
	}
}

func TestOutputsLayoutInvariant(t *testing.T) {
	// The single most important property of the suite: semantics never
	// depend on layout, under any randomization seed.
	for _, b := range spec.Suite() {
		native := runBench(t, b, false, 0)
		for seed := uint64(1); seed <= 2; seed++ {
			stab := runBench(t, b, true, seed)
			if stab.Output != native.Output {
				t.Errorf("%s: stabilized output %#x != native %#x (seed %d)",
					b.Name, stab.Output, native.Output, seed)
			}
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, b := range spec.Suite() {
		m1 := b.Build(testScale)
		m2 := b.Build(testScale)
		if m1.String() != m2.String() {
			t.Errorf("%s: two builds differ", b.Name)
		}
	}
}

func TestScaleControlsWork(t *testing.T) {
	b, _ := spec.ByName("libquantum")
	small := runBench(t, b, false, 0)

	src := b.Build(4 * testScale)
	m, err := compiler.Compile(src, compiler.Options{Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	big, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Heap: heap.NewTLSF(as, 1<<22), Mach: mach,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Instructions < 2*small.Instructions {
		t.Fatalf("scale x4 only grew instructions from %d to %d",
			small.Instructions, big.Instructions)
	}
}

func TestManyFunctionTraits(t *testing.T) {
	// The paper's §5.2 singles out gobmk, gcc, and perlbench for their
	// function counts; the synthetics must preserve that trait.
	counts := map[string]int{}
	for _, b := range spec.Suite() {
		counts[b.Name] = len(b.Build(testScale).Funcs)
	}
	for _, many := range []string{"gcc", "gobmk", "perlbench"} {
		if counts[many] < 100 {
			t.Errorf("%s has only %d functions; the original is function-heavy", many, counts[many])
		}
	}
	for _, few := range []string{"lbm", "libquantum", "cactusADM"} {
		if counts[few] > 20 {
			t.Errorf("%s has %d functions; the original is kernel-dominated", few, counts[few])
		}
	}
}
