// Quickstart: build a program, run it natively and under STABILIZER, and
// use a t-test to ask the paper's question — "does a given change to a
// program affect its performance, or is this effect indistinguishable from
// noise?" (§2).
//
// The "change" here is deliberately a non-change: the same program with a
// padding variable added to one function. Natively, the padding shifts every
// downstream function and the measured difference looks real; under
// STABILIZER the layouts are randomized away and the t-test correctly finds
// nothing.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
)

// buildProgram returns the quickstart demo program (see
// spec.QuickstartProgram): a hot hash loop over a few helper functions,
// with extraPad adding a do-nothing stack slot to one helper — the kind of
// incidental edit (§1: "adding or removing a stack variable") that moves
// every address after it.
func buildProgram(extraPad bool) *ir.Module {
	return spec.QuickstartProgram(extraPad, 1.0)
}

// run executes m once and returns simulated seconds. Under STABILIZER when
// stabilized is true, natively otherwise. The seed drives every random
// choice of the run.
func run(m *ir.Module, stabilized bool, seed uint64) float64 {
	r := rng.NewMarsaglia(seed)
	as := mem.NewAddressSpace()
	as.SetASLR(r.Split().Intn)
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		log.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	mach.SetPhysicalSeed(r.Next64())

	var rt interp.Runtime
	if stabilized {
		st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
			Code: true, Stack: true, Heap: true,
			Rerandomize: true, Interval: 20_000, Seed: r.Next64(),
		})
		if err != nil {
			log.Fatal(err)
		}
		rt = st
	} else {
		rt = &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewTLSF(as, 1<<22),
			Mach:        mach,
		}
	}
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
	if err != nil {
		log.Fatal(err)
	}
	// A pinch of system noise, as on any real machine.
	return res.Seconds * (1 + 0.0025*r.NormFloat64())
}

func main() {
	const runs = 30

	before, err := compiler.Compile(buildProgram(false), compiler.Options{Level: compiler.O1, Stabilize: true})
	if err != nil {
		log.Fatal(err)
	}
	after, err := compiler.Compile(buildProgram(true), compiler.Options{Level: compiler.O1, Stabilize: true})
	if err != nil {
		log.Fatal(err)
	}
	beforeNative, _ := compiler.Compile(buildProgram(false), compiler.Options{Level: compiler.O1})
	afterNative, _ := compiler.Compile(buildProgram(true), compiler.Options{Level: compiler.O1})

	sample := func(m *ir.Module, stabilized bool, base uint64) []float64 {
		out := make([]float64, runs)
		for i := range out {
			out[i] = run(m, stabilized, base+uint64(i))
		}
		return out
	}

	fmt.Println("The 'change': an unused 64-byte stack slot in one helper function.")
	fmt.Println()

	nb := sample(beforeNative, false, 100)
	na := sample(afterNative, false, 200)
	tn := stats.WelchT(nb, na)
	fmt.Printf("native:     before %.6fs, after %.6fs (%+.2f%%), t-test p = %.4f",
		stats.Mean(nb), stats.Mean(na),
		(stats.Mean(na)/stats.Mean(nb)-1)*100, tn.P)
	if tn.Significant(0.05) {
		fmt.Println("  -> 'significant' (measurement bias!)")
	} else {
		fmt.Println("  -> not significant")
	}

	sb := sample(before, true, 300)
	sa := sample(after, true, 400)
	ts := stats.WelchT(sb, sa)
	fmt.Printf("STABILIZER: before %.6fs, after %.6fs (%+.2f%%), t-test p = %.4f",
		stats.Mean(sb), stats.Mean(sa),
		(stats.Mean(sa)/stats.Mean(sb)-1)*100, ts.P)
	if ts.Significant(0.05) {
		fmt.Println("  -> significant")
	} else {
		fmt.Println("  -> not significant (correct: the change does nothing)")
	}
}
