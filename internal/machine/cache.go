// Package machine models the microarchitectural state that makes memory
// layout matter: set-associative caches, a TLB, and a branch predictor with
// aliasing, plus a cycle cost model.
//
// The paper attributes layout-induced performance variation to exactly these
// structures ("caches and branch predictors ... are sensitive to the
// addresses of the objects they manage", §1). This package reproduces that
// sensitivity: two hot functions whose code lands in the same cache sets
// conflict; branches whose addresses share predictor slots alias; programs
// spread over more pages pressure the TLB. The default configuration mirrors
// the paper's Intel Core i3-550 test machine.
package machine

import (
	"fmt"

	"repro/internal/mem"
)

// CacheConfig describes one level of set-associative cache.
type CacheConfig struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line (power of two)
	Ways     int    // associativity
}

// Validate checks the configuration for internal consistency.
func (c CacheConfig) Validate() error {
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("machine: %s line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("machine: %s has %d ways", c.Name, c.Ways)
	}
	sets := c.Size / (c.LineSize * uint64(c.Ways))
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("machine: %s set count %d is not a positive power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement. Tags are kept
// most-recently-used first within each set, so a hit is a short scan and a
// move-to-front.
type Cache struct {
	cfg         CacheConfig
	sets        uint64
	setMask     uint64
	lineShift   uint
	ways        int
	tags        []uint64 // sets × ways, MRU first; 0 means empty
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	granularity uint64 // line size, or page size for a TLB

	// Gen counts tag-array mutations: it advances whenever a line is
	// installed, promoted within its set, or flushed. An MRU-way hit leaves
	// Gen unchanged, so an unchanged Gen proves every previously verified
	// MRU-resident line is still MRU-resident — the invariant FetchSteady's
	// callers use to skip re-probing a fetch span (see fastpath.go). Gen is
	// not a statistic: it is excluded from Counters and never recorded.
	Gen uint64
}

// NewCache builds a cache from cfg. It panics on an invalid configuration;
// configurations in this repository are static.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Ways))
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:         cfg,
		sets:        sets,
		setMask:     sets - 1,
		lineShift:   shift,
		ways:        cfg.Ways,
		tags:        make([]uint64, sets*uint64(cfg.Ways)),
		granularity: cfg.LineSize,
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// LineSize returns the line (or page) granularity in bytes.
func (c *Cache) LineSize() uint64 { return c.granularity }

// line converts an address to its line number.
func (c *Cache) line(a mem.Addr) uint64 { return uint64(a) >> c.lineShift }

// SetOf returns the set index an address maps to; exported for tests that
// construct deliberate conflicts.
func (c *Cache) SetOf(a mem.Addr) uint64 { return c.line(a) & c.setMask }

// Access looks up the line containing a, updating LRU state, and reports
// whether it hit. On a miss the line is installed, evicting the LRU way.
func (c *Cache) Access(a mem.Addr) bool {
	line := c.line(a)
	tag := line | 1<<63 // bit 63 marks a valid entry; line numbers never reach it
	base := int((line & c.setMask)) * c.ways
	if c.tags[base] == tag {
		c.Hits++
		return true
	}
	return c.accessCold(c.tags[base:base+c.ways], tag)
}

// Probe reports whether the line containing a is resident without touching
// LRU state or counters.
func (c *Cache) Probe(a mem.Addr) bool {
	line := c.line(a)
	tag := line | 1<<63
	base := int((line & c.setMask)) * c.ways
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Flush empties the cache but keeps counters.
func (c *Cache) Flush() {
	c.Gen++
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// ResetCounters zeroes the hit/miss/eviction counters.
func (c *Cache) ResetCounters() { c.Hits, c.Misses, c.Evictions = 0, 0, 0 }

// NewTLB builds a TLB: a cache whose "lines" are pages.
func NewTLB(entries, ways int) *Cache {
	c := NewCache(CacheConfig{
		Name:     "TLB",
		Size:     uint64(entries) * mem.PageSize,
		LineSize: mem.PageSize,
		Ways:     ways,
	})
	return c
}
