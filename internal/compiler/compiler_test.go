package compiler_test

import (
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
)

// runNative compiles nothing further: it links m with the identity order and
// executes it on a fresh machine, returning the result.
func runNative(t *testing.T, m *ir.Module) interp.Result {
	t.Helper()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	mach := machine.New(machine.DefaultConfig())
	rt := &interp.NativeRuntime{
		FuncAddrs:   img.FuncAddrs,
		GlobalAddrs: img.GlobalAddrs,
		Stack:       as.StackBase(),
		Heap:        heap.NewSegregated(as),
		Mach:        mach,
	}
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// compileAndRun compiles src at the given level and runs it.
func compileAndRun(t *testing.T, src *ir.Module, level compiler.OptLevel, stabilize bool) interp.Result {
	t.Helper()
	m, err := compiler.Compile(src, compiler.Options{Level: level, Stabilize: stabilize})
	if err != nil {
		t.Fatalf("compile %v: %v", level, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate after %v: %v", level, err)
	}
	return runNative(t, m)
}

// testProgram builds a program exercising arithmetic, loops, calls, globals,
// stack arrays, heap objects, and floating point — enough surface for every
// pass to have something to do.
func testProgram() *ir.Module {
	mb := ir.NewModuleBuilder("testprog")
	acc := mb.Global("acc", 8)
	table := mb.GlobalInit("table", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	dead := mb.Global("dead", 64) // never referenced: DeadGlobals target

	// A small helper: hash(x, k) — inlining target; k is always 13 at every
	// call site (IPConstProp target).
	hash := mb.Func("hash", 2)
	x, k := hash.Param(0), hash.Param(1)
	h := hash.Mul(x, hash.ConstI(2654435761))
	h2 := hash.Xor(h, hash.Shr(h, hash.ConstI(13)))
	hash.Ret(hash.Add(h2, k))

	// A float kernel with constants and conversions.
	fk := mb.Func("fkernel", 1)
	v := fk.I2F(fk.Param(0))
	scaled := fk.FMul(v, fk.ConstF(1.5))
	shifted := fk.FAdd(scaled, fk.ConstF(0.25))
	fk.Ret(fk.F2I(fk.FMul(shifted, shifted)))

	// A function with a promotable scalar slot and an array slot.
	work := mb.Func("work", 1)
	tmp := work.Slot("tmp", 8)
	arr := work.Slot("arr", 128)
	n := work.Param(0)
	work.StoreS(tmp, 0, ir.NoReg, work.ConstI(0))
	work.Loop(n, func(i ir.Reg) {
		// Loop-invariant computation for LICM to hoist.
		inv := work.Mul(work.ConstI(7), work.ConstI(11))
		idx := work.Rem(i, work.ConstI(16))
		work.StoreS(arr, 0, idx, work.Add(i, inv))
		cur := work.LoadS(tmp, 0, ir.NoReg)
		elem := work.LoadS(arr, 0, idx)
		hv := work.Call(hash.Index(), elem, work.ConstI(13))
		work.StoreS(tmp, 0, ir.NoReg, work.Add(cur, hv))
	})
	work.Ret(work.LoadS(tmp, 0, ir.NoReg))

	main := mb.Func("main", 0)
	total := main.ConstI(0)
	main.LoopN(20, func(i ir.Reg) {
		p := main.Alloc(64)
		main.StoreH(p, 0, ir.NoReg, i)
		e := main.LoadG(table, 0, main.Rem(i, main.ConstI(8)))
		w := main.Call(work.Index(), main.Add(e, main.ConstI(4)))
		fv := main.Call(fk.Index(), i)
		hp := main.LoadH(p, 0, ir.NoReg)
		sum := main.Add(main.Add(w, fv), hp)
		main.MovTo(total, main.Add(total, sum))
		main.Free(p)
	})
	main.StoreG(acc, 0, ir.NoReg, total)
	main.Sink(main.LoadG(acc, 0, ir.NoReg))
	main.Ret(ir.NoReg)
	_ = dead
	return mb.Module()
}

func TestPipelinesPreserveSemantics(t *testing.T) {
	src := testProgram()
	ref := compileAndRun(t, src, compiler.O0, false)
	if ref.Output == 0 {
		t.Fatal("reference output is zero; program under-constrained")
	}
	for _, level := range []compiler.OptLevel{compiler.O1, compiler.O2, compiler.O3} {
		for _, stab := range []bool{false, true} {
			got := compileAndRun(t, src, level, stab)
			if got.Output != ref.Output {
				t.Errorf("%v stabilize=%v changed output: %#x != %#x", level, stab, got.Output, ref.Output)
			}
		}
	}
}

func TestHigherLevelsRetireFewerInstructions(t *testing.T) {
	src := testProgram()
	o0 := compileAndRun(t, src, compiler.O0, false)
	o1 := compileAndRun(t, src, compiler.O1, false)
	o2 := compileAndRun(t, src, compiler.O2, false)
	if o1.Instructions >= o0.Instructions {
		t.Errorf("-O1 (%d instrs) not better than -O0 (%d)", o1.Instructions, o0.Instructions)
	}
	if o2.Instructions >= o1.Instructions {
		t.Errorf("-O2 (%d instrs) not better than -O1 (%d)", o2.Instructions, o1.Instructions)
	}
}

func TestCompileDoesNotMutateSource(t *testing.T) {
	src := testProgram()
	before := src.String()
	if _, err := compiler.Compile(src, compiler.Options{Level: compiler.O3, Stabilize: true}); err != nil {
		t.Fatal(err)
	}
	if src.String() != before {
		t.Fatal("Compile mutated its input module")
	}
}

func TestConstFoldFoldsChain(t *testing.T) {
	mb := ir.NewModuleBuilder("cf")
	f := mb.Func("main", 0)
	a := f.ConstI(6)
	b := f.ConstI(7)
	c := f.Mul(a, b)
	d := f.Add(c, f.ConstI(0))
	f.Sink(d)
	f.Ret(ir.NoReg)
	m := mb.Module()
	compiler.ConstFold{}.Run(m)
	compiler.DCE{}.Run(m)
	ir.ComputeSizes(m)
	// After folding + DCE only ConstI(42) and the sink should remain.
	instrs := m.Funcs[0].Blocks[0].Instrs
	if len(instrs) != 2 {
		t.Fatalf("got %d instructions after fold+dce, want 2:\n%s", len(instrs), m)
	}
	if instrs[0].Op != ir.OpConstI || instrs[0].Imm != 42 {
		t.Fatalf("folded constant wrong: %+v", instrs[0])
	}
}

func TestStrengthReduction(t *testing.T) {
	mb := ir.NewModuleBuilder("sr")
	f := mb.Func("main", 1)
	eight := f.ConstI(8)
	f.Sink(f.Mul(f.Param(0), eight))
	f.Ret(ir.NoReg)
	m := mb.Module()
	ref := m.Clone()
	compiler.ConstFold{}.Run(m)
	found := false
	for _, in := range m.Funcs[0].Blocks[0].Instrs {
		if in.Op == ir.OpShl {
			found = true
		}
		if in.Op == ir.OpMul {
			t.Fatal("multiply by 8 not strength-reduced")
		}
	}
	if !found {
		t.Fatal("no shift emitted")
	}
	_ = ref
}

func TestDCEKeepsSideEffects(t *testing.T) {
	mb := ir.NewModuleBuilder("dce")
	g := mb.Global("g", 8)
	f := mb.Func("main", 0)
	v := f.ConstI(9)
	f.StoreG(g, 0, ir.NoReg, v)
	f.ConstI(1234) // dead
	f.Sink(f.LoadG(g, 0, ir.NoReg))
	f.Ret(ir.NoReg)
	m := mb.Module()
	compiler.DCE{}.Run(m)
	for _, in := range m.Funcs[0].Blocks[0].Instrs {
		if in.Op == ir.OpConstI && in.Imm == 1234 {
			t.Fatal("dead constant survived DCE")
		}
	}
	// Store, load, sink must survive.
	ops := map[ir.Op]bool{}
	for _, in := range m.Funcs[0].Blocks[0].Instrs {
		ops[in.Op] = true
	}
	for _, want := range []ir.Op{ir.OpStoreG, ir.OpLoadG, ir.OpSink} {
		if !ops[want] {
			t.Fatalf("%v removed by DCE", want)
		}
	}
}

func TestLocalCSEEliminatesRecomputation(t *testing.T) {
	mb := ir.NewModuleBuilder("cse")
	f := mb.Func("main", 2)
	a, b := f.Param(0), f.Param(1)
	x := f.Add(a, b)
	y := f.Add(a, b) // redundant
	f.Sink(f.Mul(x, y))
	f.Ret(ir.NoReg)
	m := mb.Module()
	compiler.LocalCSE{}.Run(m)
	adds := 0
	for _, in := range m.Funcs[0].Blocks[0].Instrs {
		if in.Op == ir.OpAdd {
			adds++
		}
	}
	if adds != 1 {
		t.Fatalf("CSE left %d adds, want 1", adds)
	}
}

func TestCSEHonorsReassignment(t *testing.T) {
	// If an operand register is overwritten between two identical
	// expressions, the second must NOT be replaced.
	mb := ir.NewModuleBuilder("cse2")
	ga := mb.GlobalInit("ga", []int64{17})
	gb := mb.GlobalInit("gb", []int64{23})
	f := mb.Func("main", 0)
	a, b := f.LoadG(ga, 0, ir.NoReg), f.LoadG(gb, 0, ir.NoReg)
	x := f.Add(a, b)
	f.MovTo(a, f.ConstI(100)) // clobber a
	y := f.Add(a, b)          // different value now
	f.Sink(x)
	f.Sink(y)
	f.Ret(ir.NoReg)
	src := mb.Module()
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	opt := runNative(t, mustCompile(t, src, compiler.O2))
	if ref.Output != opt.Output {
		t.Fatalf("CSE broke reassignment semantics: %#x != %#x", opt.Output, ref.Output)
	}
}

func mustCompile(t *testing.T, src *ir.Module, level compiler.OptLevel) *ir.Module {
	t.Helper()
	m, err := compiler.Compile(src, compiler.Options{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLICMHoistsInvariant(t *testing.T) {
	mb := ir.NewModuleBuilder("licm")
	gn := mb.GlobalInit("n", []int64{10})
	f := mb.Func("main", 0)
	sum := f.ConstI(0)
	f.Loop(f.LoadG(gn, 0, ir.NoReg), func(i ir.Reg) {
		inv := f.Mul(f.ConstI(123), f.ConstI(456)) // invariant
		f.MovTo(sum, f.Add(sum, f.Add(i, inv)))
	})
	f.Sink(sum)
	f.Ret(ir.NoReg)
	src := mb.Module()

	// Semantics preserved.
	m := src.Clone()
	compiler.LICM{}.Run(m)
	m.Finalize()
	ir.ComputeSizes(m)
	if err := m.Validate(); err != nil {
		t.Fatalf("LICM output invalid: %v", err)
	}
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("LICM changed output: %#x != %#x", got.Output, ref.Output)
	}

	// And fewer dynamic instructions than the unoptimized build.
	if got.Instructions >= ref.Instructions {
		t.Fatalf("LICM did not reduce instructions: %d >= %d", got.Instructions, ref.Instructions)
	}
}

func TestInlineSmallCallee(t *testing.T) {
	mb := ir.NewModuleBuilder("inline")
	sq := mb.Func("sq", 1)
	sq.Ret(sq.Mul(sq.Param(0), sq.Param(0)))
	f := mb.Func("main", 0)
	s := f.ConstI(0)
	f.LoopN(10, func(i ir.Reg) {
		f.MovTo(s, f.Add(s, f.Call(sq.Index(), i)))
	})
	f.Sink(s)
	f.Ret(ir.NoReg)
	src := mb.Module()
	ir.ComputeSizes(src)

	m := src.Clone()
	compiler.Inline{Threshold: 256, MaxGrowth: 8192}.Run(m)
	if err := m.Validate(); err != nil {
		t.Fatalf("inline output invalid: %v", err)
	}
	calls := 0
	for _, b := range m.Funcs[m.FuncIndex("main")].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls++
			}
		}
	}
	if calls != 0 {
		t.Fatalf("%d calls remain after inlining", calls)
	}
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	m.Finalize()
	ir.ComputeSizes(m)
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("inlining changed output: %#x != %#x", got.Output, ref.Output)
	}
}

func TestInlineRefusesRecursion(t *testing.T) {
	mb := ir.NewModuleBuilder("rec")
	fac := mb.Func("fac", 1)
	n := fac.Param(0)
	res := fac.ConstI(1)
	cond := fac.CmpLE(n, fac.ConstI(1))
	fac.If(cond, nil, func() {
		sub := fac.Sub(n, fac.ConstI(1))
		fac.MovTo(res, fac.Mul(n, fac.Call(fac.Index(), sub)))
	})
	fac.Ret(res)
	f := mb.Func("main", 0)
	f.Sink(f.Call(fac.Index(), f.ConstI(10)))
	f.Ret(ir.NoReg)
	m := mb.Module()
	ir.ComputeSizes(m)
	compiler.Inline{Threshold: 10000, MaxGrowth: 100000}.Run(m)
	if err := m.Validate(); err != nil {
		t.Fatalf("inline output invalid: %v", err)
	}
	// The recursive call inside fac must survive.
	found := false
	for _, b := range m.Funcs[m.FuncIndex("fac")].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == int32(m.FuncIndex("fac")) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("recursion was inlined away")
	}
}

func TestSRAPromotesScalarSlot(t *testing.T) {
	mb := ir.NewModuleBuilder("sra")
	f := mb.Func("main", 0)
	s := f.Slot("scalar", 8)
	arr := f.Slot("arr", 64)
	f.StoreS(s, 0, ir.NoReg, f.ConstI(5))
	f.StoreS(arr, 8, ir.NoReg, f.ConstI(6)) // offset access: not promotable
	v := f.LoadS(s, 0, ir.NoReg)
	w := f.LoadS(arr, 8, ir.NoReg)
	f.Sink(f.Add(v, w))
	f.Ret(ir.NoReg)
	src := mb.Module()

	m := src.Clone()
	compiler.SRA{}.Run(m)
	if err := m.Validate(); err != nil {
		t.Fatalf("SRA output invalid: %v", err)
	}
	if len(m.Funcs[0].Slots) != 1 {
		t.Fatalf("SRA left %d slots, want 1 (the array)", len(m.Funcs[0].Slots))
	}
	ir.ComputeSizes(m)
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("SRA changed output: %#x != %#x", got.Output, ref.Output)
	}
}

func TestDeadGlobalsRenumbers(t *testing.T) {
	mb := ir.NewModuleBuilder("dg")
	dead := mb.Global("dead", 128)
	live := mb.Global("live", 8)
	f := mb.Func("main", 0)
	f.StoreG(live, 0, ir.NoReg, f.ConstI(77))
	f.Sink(f.LoadG(live, 0, ir.NoReg))
	f.Ret(ir.NoReg)
	_ = dead
	src := mb.Module()

	m := src.Clone()
	compiler.DeadGlobals{}.Run(m)
	if len(m.Globals) != 1 || m.Globals[0].Name != "live" {
		t.Fatalf("globals after pass: %+v", m.Globals)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("renumbering broke references: %v", err)
	}
	ir.ComputeSizes(m)
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("DeadGlobals changed output: %#x != %#x", got.Output, ref.Output)
	}
}

func TestFPConstToGlobal(t *testing.T) {
	mb := ir.NewModuleBuilder("fp")
	f := mb.Func("main", 0)
	a := f.ConstF(3.25)
	b := f.ConstF(3.25) // same constant: shares the global
	z := f.ConstF(0)    // zero stays an immediate
	f.SinkF(f.FAdd(f.FAdd(a, b), z))
	f.Ret(ir.NoReg)
	src := mb.Module()

	m := src.Clone()
	compiler.FPConstToGlobal{}.Run(m)
	if len(m.Globals) != 1 {
		t.Fatalf("expected 1 pooled fp-constant global, got %d", len(m.Globals))
	}
	loads, consts := 0, 0
	for _, in := range m.Funcs[0].Blocks[0].Instrs {
		switch in.Op {
		case ir.OpLoadGF:
			loads++
		case ir.OpConstF:
			consts++
		}
	}
	if loads != 2 || consts != 1 {
		t.Fatalf("loads=%d consts=%d, want 2 loads and the zero constant", loads, consts)
	}
	m.Finalize()
	ir.ComputeSizes(m)
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("FPConstToGlobal changed output: %#x != %#x", got.Output, ref.Output)
	}
}

func TestOutlineConversions(t *testing.T) {
	mb := ir.NewModuleBuilder("conv")
	f := mb.Func("main", 0)
	v := f.I2F(f.ConstI(41))
	f.Sink(f.F2I(f.FAdd(v, f.ConstF(1))))
	f.Ret(ir.NoReg)
	src := mb.Module()

	m := src.Clone()
	compiler.OutlineConversions{}.Run(m)
	if err := m.Validate(); err != nil {
		t.Fatalf("outlined module invalid: %v", err)
	}
	i2f := m.FuncIndex("__sz_i2f")
	f2i := m.FuncIndex("__sz_f2i")
	if i2f < 0 || f2i < 0 {
		t.Fatal("conversion outlines missing")
	}
	if !m.Funcs[i2f].NoRelocate || !m.Funcs[f2i].NoRelocate {
		t.Fatal("conversion outlines must be NoRelocate")
	}
	ir.ComputeSizes(m)
	ref := runNative(t, mustCompile(t, src, compiler.O0))
	got := runNative(t, m)
	if ref.Output != got.Output {
		t.Fatalf("outlining changed output: %#x != %#x", got.Output, ref.Output)
	}
}

func TestLinkOrderChangesAddresses(t *testing.T) {
	src := testProgram()
	m := mustCompile(t, src, compiler.O2)
	img1, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), mem.NewAddressSpace())
	if err != nil {
		t.Fatal(err)
	}
	order2 := compiler.RandomOrder(len(m.Funcs), rng.NewMarsaglia(99))
	img2, err := compiler.Link(m, order2, mem.NewAddressSpace())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range img1.FuncAddrs {
		if img1.FuncAddrs[i] != img2.FuncAddrs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("permuted link order left all function addresses unchanged")
	}
}

func TestLinkRejectsBadOrder(t *testing.T) {
	src := testProgram()
	m := mustCompile(t, src, compiler.O0)
	if _, err := compiler.Link(m, []int{0}, mem.NewAddressSpace()); err == nil {
		t.Fatal("short order accepted")
	}
	bad := compiler.DefaultOrder(len(m.Funcs))
	bad[0] = bad[1] // duplicate
	if _, err := compiler.Link(m, bad, mem.NewAddressSpace()); err == nil {
		t.Fatal("duplicate order accepted")
	}
}

func TestLinkOrderPreservesSemantics(t *testing.T) {
	// Output must be identical under any link order (only cycles differ).
	src := testProgram()
	m := mustCompile(t, src, compiler.O2)
	base := runNative(t, m)
	f := func(seed uint64) bool {
		as := mem.NewAddressSpace()
		img, err := compiler.Link(m, compiler.RandomOrder(len(m.Funcs), rng.NewMarsaglia(seed)), as)
		if err != nil {
			return false
		}
		mach := machine.New(machine.DefaultConfig())
		rt := &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewSegregated(as),
			Mach:        mach,
		}
		res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
		return err == nil && res.Output == base.Output
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCompilationIsDeterministic(t *testing.T) {
	src := testProgram()
	a := mustCompile(t, src, compiler.O3)
	b := mustCompile(t, src, compiler.O3)
	if a.String() != b.String() {
		t.Fatal("two compilations of the same module differ — layout would be nondeterministic")
	}
}
