package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// This file reconstructs a campaign's execution timeline from its durable
// event journal: the per-campaign JSONL log every coordinator appends to
// the store (surviving restarts, failovers, and event-ring wraps). The
// reconstruction merges the coordinator's scheduling events (lease granted
// / expired / released, cell requeued / complete) with the worker-side
// span records folded into the journal at completion ("cell span" lines)
// into one multi-process Chrome trace: pid 1 is the coordinator's
// scheduling view, each worker gets its own pid, and each cell gets a tid
// shared across processes so an attempt's grant, compute, and completion
// line up vertically in Perfetto.
//
// BuildTimeline is a pure function of the journal bytes: reconstructing
// the same journal twice yields byte-identical trace output (pinned by
// test). All timestamps are wall-clock and therefore non-golden — the
// timeline is for humans chasing stragglers, not for golden diffs. Worker
// span timestamps come from the worker's own clock; cross-host skew shows
// up as compute spans slightly offset from their grant span, which is
// honest: the journal records what each process observed.

// Timeline is a campaign's reconstructed execution history.
type Timeline struct {
	Campaign string
	Trace    string
	// Events is the Chrome trace-event stream (metadata first, then the
	// journal's events in log order).
	Events []obs.TraceEvent
	Report TimelineReport
}

// TimelineReport is the analysis layer over the trace: per-cell timings
// and the campaign-level critical path.
type TimelineReport struct {
	Campaign string `json:"campaign"`
	Trace    string `json:"trace"`
	// Failovers counts coordinator restore events in the journal — each one
	// is a process that took over (or restarted) mid-campaign.
	Failovers int `json:"failovers"`
	// TotalSeconds spans the first journal timestamp to the last.
	TotalSeconds float64 `json:"total_seconds"`
	// CriticalPath names the cell that finished last — the one that set the
	// campaign's wall-clock time.
	CriticalPath string `json:"critical_path,omitempty"`
	// Cells is sorted by completion time, latest first, so the stragglers
	// lead the report.
	Cells []CellTimeline `json:"cells"`
	// MalformedLines counts journal lines that failed to parse (torn tail,
	// foreign content); they are skipped, not fatal.
	MalformedLines int `json:"malformed_lines,omitempty"`
}

// CellTimeline is one cell's reconstructed schedule.
type CellTimeline struct {
	Cell string `json:"cell"`
	// QueueWaitSeconds is submit → first lease grant.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Attempts         int     `json:"attempts"`
	Requeues         int     `json:"requeues"`
	// Workers lists every worker that held a lease on the cell, in order.
	Workers []string `json:"workers,omitempty"`
	// RunSeconds sums the worker-reported compute spans.
	RunSeconds float64 `json:"run_seconds"`
	// LostSeconds sums lease time that produced nothing: attempts ended by
	// expiry or a draining release.
	LostSeconds float64 `json:"lost_seconds"`
	// EndSeconds is when the cell completed, relative to the journal start
	// (0 = never completed in this journal).
	EndSeconds float64 `json:"end_seconds"`
	Failed     bool    `json:"failed,omitempty"`
	StoreHit   bool    `json:"store_hit,omitempty"`
}

// journalLine is the superset of fields the coordinator's event journal
// emits; unknown fields are ignored.
type journalLine struct {
	Msg         string `json:"msg"`
	Campaign    string `json:"campaign"`
	Cell        string `json:"cell"`
	Worker      string `json:"worker"`
	Attempt     int    `json:"attempt"`
	Lease       uint64 `json:"lease"`
	Tenant      string `json:"tenant"`
	Trace       string `json:"trace"`
	Span        string `json:"span"`
	Reason      string `json:"reason"`
	Err         string `json:"err"`
	State       string `json:"state"`
	StoreHits   int    `json:"store_hits"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns"`
	T           int64  `json:"t_wall_ns_nongolden"`
}

// attemptOf recovers the attempt ordinal, preferring the span id's "#N"
// suffix (frozen at grant) over the live attempt counter.
func (jl *journalLine) attemptOf() int {
	if i := strings.LastIndexByte(jl.Span, '#'); i >= 0 {
		if n, err := strconv.Atoi(jl.Span[i+1:]); err == nil {
			return n
		}
	}
	return jl.Attempt
}

// BuildTimeline reconstructs a campaign's timeline from its event journal
// (the JSONL StateArea log named "<id>.events"; the in-memory event ring
// serves the same lines, minus whatever wrapped). id filters foreign lines
// and labels the output; "" accepts any campaign field.
func BuildTimeline(journal []byte, id string) (*Timeline, error) {
	var lines []journalLine
	malformed := 0
	for _, raw := range bytes.Split(journal, []byte("\n")) {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal(raw, &jl); err != nil || jl.Msg == "" {
			malformed++
			continue
		}
		if id != "" && jl.Campaign != "" && jl.Campaign != id {
			continue
		}
		lines = append(lines, jl)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("campaign: no usable journal lines for %q (%d malformed)", id, malformed)
	}

	tl := &Timeline{Campaign: id}
	if tl.Campaign == "" {
		tl.Campaign = lines[0].Campaign
	}

	// The time origin is the earliest timestamp any process reported —
	// coordinator journal stamps or worker span starts — so every ts in the
	// trace is non-negative even across skewed clocks.
	var t0, tMax int64
	for _, jl := range lines {
		for _, t := range []int64{jl.T, jl.StartUnixNs} {
			if t > 0 && (t0 == 0 || t < t0) {
				t0 = t
			}
		}
		for _, t := range []int64{jl.T, jl.EndUnixNs} {
			if t > tMax {
				tMax = t
			}
		}
	}
	usec := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	// pid 1 is the coordinator; workers get pids in order of first
	// appearance. Cells get tids the same way, shared across pids.
	const coordPid = int64(1)
	workerPid := map[string]int64{}
	workerOrder := []string{}
	cellTid := map[string]int64{}
	cellOrder := []string{}
	pidOf := func(worker string) int64 {
		if worker == "" {
			return coordPid
		}
		if pid, ok := workerPid[worker]; ok {
			return pid
		}
		pid := int64(len(workerPid)) + 2
		workerPid[worker] = pid
		workerOrder = append(workerOrder, worker)
		return pid
	}
	tidOf := func(cell string) int64 {
		if cell == "" {
			return 0
		}
		if tid, ok := cellTid[cell]; ok {
			return tid
		}
		tid := int64(len(cellTid)) + 1
		cellTid[cell] = tid
		cellOrder = append(cellOrder, cell)
		return tid
	}

	type openAttempt struct {
		startNs int64
		worker  string
	}
	open := map[string]*openAttempt{} // key: cell#attempt
	cells := map[string]*CellTimeline{}
	cellAt := func(name string) *CellTimeline {
		ct := cells[name]
		if ct == nil {
			ct = &CellTimeline{Cell: name}
			cells[name] = ct
		}
		return ct
	}
	var body []obs.TraceEvent
	var submittedNs int64
	closeAttempt := func(jl *journalLine, endNs int64, name string, lost bool) {
		key := jl.Cell + "#" + strconv.Itoa(jl.attemptOf())
		oa := open[key]
		if oa == nil {
			return
		}
		delete(open, key)
		dur := endNs - oa.startNs
		if dur < 0 {
			dur = 0
		}
		if lost {
			cellAt(jl.Cell).LostSeconds += float64(dur) / 1e9
		}
		body = append(body, obs.TraceEvent{
			Name: name, Cat: "lease", Ph: "X",
			Ts: usec(oa.startNs), Dur: float64(dur) / 1e3,
			Pid: coordPid, Tid: tidOf(jl.Cell),
			Args: map[string]any{"worker": oa.worker, "attempt": jl.attemptOf()},
		})
	}

	for i := range lines {
		jl := &lines[i]
		if jl.Trace != "" && tl.Trace == "" {
			tl.Trace = jl.Trace
		}
		switch jl.Msg {
		case "campaign submitted":
			submittedNs = jl.T
			body = append(body, obs.TraceEvent{
				Name: "campaign submitted", Cat: "campaign", Ph: "i",
				Ts: usec(jl.T), Pid: coordPid, Tid: 0,
				Args: map[string]any{"tenant": jl.Tenant, "trace": jl.Trace},
			})
		case "lease granted":
			ct := cellAt(jl.Cell)
			attempt := jl.attemptOf()
			if attempt > ct.Attempts {
				ct.Attempts = attempt
			}
			if len(ct.Workers) == 0 && submittedNs > 0 && jl.T > submittedNs {
				ct.QueueWaitSeconds = float64(jl.T-submittedNs) / 1e9
			}
			ct.Workers = append(ct.Workers, jl.Worker)
			pidOf(jl.Worker) // reserve the pid in appearance order
			open[jl.Cell+"#"+strconv.Itoa(attempt)] = &openAttempt{startNs: jl.T, worker: jl.Worker}
		case "cell complete":
			ct := cellAt(jl.Cell)
			ct.EndSeconds = float64(jl.T-t0) / 1e9
			closeAttempt(jl, jl.T, jl.Cell+" attempt "+strconv.Itoa(jl.attemptOf()), false)
		case "cell failed on worker":
			closeAttempt(jl, jl.T, jl.Cell+" attempt "+strconv.Itoa(jl.attemptOf())+" (error)", true)
		case "lease expired":
			closeAttempt(jl, jl.T, jl.Cell+" attempt "+strconv.Itoa(jl.attemptOf())+" (expired)", true)
		case "lease released (worker draining)":
			closeAttempt(jl, jl.T, jl.Cell+" attempt "+strconv.Itoa(jl.attemptOf())+" (released)", true)
		case "cell requeued":
			cellAt(jl.Cell).Requeues++
			body = append(body, obs.TraceEvent{
				Name: "requeue " + jl.Cell, Cat: "campaign", Ph: "i",
				Ts: usec(jl.T), Pid: coordPid, Tid: tidOf(jl.Cell),
				Args: map[string]any{"reason": jl.Reason},
			})
		case "cell span":
			// The worker-side compute span, on the worker's own clock.
			dur := jl.EndUnixNs - jl.StartUnixNs
			if dur < 0 {
				dur = 0
			}
			cellAt(jl.Cell).RunSeconds += float64(dur) / 1e9
			body = append(body, obs.TraceEvent{
				Name: jl.Cell + " compute", Cat: "compute", Ph: "X",
				Ts: usec(jl.StartUnixNs), Dur: float64(dur) / 1e3,
				Pid: pidOf(jl.Worker), Tid: tidOf(jl.Cell),
				Args: map[string]any{"span": jl.Span, "attempt": jl.attemptOf()},
			})
		case "campaign restored from durable state":
			tl.Report.Failovers++
			body = append(body, obs.TraceEvent{
				Name: "coordinator takeover", Cat: "campaign", Ph: "i",
				Ts: usec(jl.T), Pid: coordPid, Tid: 0,
				Args: map[string]any{"state": jl.State},
			})
		case "campaign complete", "campaign failed":
			body = append(body, obs.TraceEvent{
				Name: jl.Msg, Cat: "campaign", Ph: "i",
				Ts: usec(jl.T), Pid: coordPid, Tid: 0,
			})
			if jl.Msg == "campaign failed" && jl.Cell != "" {
				cellAt(jl.Cell).Failed = true
			}
		}
		// Pre-register cells and workers named by any message so tid/pid
		// assignment follows log order, not the switch above.
		if jl.Cell != "" {
			tidOf(jl.Cell)
		}
	}

	// Attempts still open when the journal ends (a crash mid-campaign, or a
	// live campaign) close at the last observed instant so the trace stays
	// loadable.
	var openKeys []string
	for key := range open {
		openKeys = append(openKeys, key)
	}
	sort.Strings(openKeys)
	for _, key := range openKeys {
		cell := key[:strings.LastIndexByte(key, '#')]
		jl := journalLine{Cell: cell, Span: key}
		closeAttempt(&jl, tMax, cell+" attempt "+strconv.Itoa(jl.attemptOf())+" (open at log end)", false)
	}

	// Metadata first: process and thread names, in pid/tid order.
	var meta []obs.TraceEvent
	meta = append(meta, obs.TraceEvent{
		Name: "process_name", Ph: "M", Pid: coordPid, Tid: 0,
		Args: map[string]any{"name": "coordinator"},
	})
	for _, w := range workerOrder {
		meta = append(meta, obs.TraceEvent{
			Name: "process_name", Ph: "M", Pid: workerPid[w], Tid: 0,
			Args: map[string]any{"name": "worker " + w},
		})
	}
	pids := append([]int64{coordPid}, func() []int64 {
		var ps []int64
		for _, w := range workerOrder {
			ps = append(ps, workerPid[w])
		}
		return ps
	}()...)
	for _, pid := range pids {
		for _, cell := range cellOrder {
			meta = append(meta, obs.TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: cellTid[cell],
				Args: map[string]any{"name": cell},
			})
		}
	}
	tl.Events = append(meta, body...)

	// The report: stragglers first (latest completion leads).
	tl.Report.Campaign = tl.Campaign
	tl.Report.Trace = tl.Trace
	tl.Report.MalformedLines = malformed
	if tMax > t0 {
		tl.Report.TotalSeconds = float64(tMax-t0) / 1e9
	}
	for _, cell := range cellOrder {
		ct := cells[cell]
		if ct == nil {
			ct = &CellTimeline{Cell: cell, StoreHit: true}
		}
		if ct.Attempts == 0 && len(ct.Workers) == 0 {
			// Present in the artifact order but never leased: the store
			// already had its block.
			ct.StoreHit = true
		}
		tl.Report.Cells = append(tl.Report.Cells, *ct)
	}
	sort.SliceStable(tl.Report.Cells, func(i, j int) bool {
		a, b := tl.Report.Cells[i], tl.Report.Cells[j]
		if a.EndSeconds != b.EndSeconds {
			return a.EndSeconds > b.EndSeconds
		}
		return a.Cell < b.Cell
	})
	if len(tl.Report.Cells) > 0 && tl.Report.Cells[0].EndSeconds > 0 {
		tl.Report.CriticalPath = tl.Report.Cells[0].Cell
	}
	return tl, nil
}

// EncodeTrace renders the timeline as Chrome trace-event JSON. The bytes
// are a pure function of the journal: reconstructing twice from the same
// journal is byte-identical.
func (tl *Timeline) EncodeTrace() ([]byte, error) {
	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, tl.Events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Render formats the straggler report for terminals.
func (r *TimelineReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s trace %s: %d cells, %.2fs total", r.Campaign, r.Trace, len(r.Cells), r.TotalSeconds)
	if r.Failovers > 0 {
		fmt.Fprintf(&b, ", %d coordinator takeover(s)", r.Failovers)
	}
	if r.MalformedLines > 0 {
		fmt.Fprintf(&b, ", %d malformed journal line(s) skipped", r.MalformedLines)
	}
	b.WriteByte('\n')
	if r.CriticalPath != "" {
		fmt.Fprintf(&b, "critical path: %s\n", r.CriticalPath)
	}
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %8s  %s\n",
		"cell", "end_s", "queue_s", "run_s", "lost_s", "attempts", "requeues", "workers")
	for _, c := range r.Cells {
		status := strings.Join(c.Workers, ",")
		if c.StoreHit {
			status = "(store hit)"
		}
		if c.Failed {
			status += " FAILED"
		}
		fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f %8.2f %8d %8d  %s\n",
			c.Cell, c.EndSeconds, c.QueueWaitSeconds, c.RunSeconds, c.LostSeconds,
			c.Attempts, c.Requeues, status)
	}
	return b.String()
}
