// Package campaign is the distributed benchmarking farm: a coordinator
// that shards the cells of a benchmark campaign across worker processes
// over HTTP/JSON, backed by the content-addressed result store
// (internal/store) so a cell is computed once ever — across workers,
// campaigns, and users — and a repeated campaign costs only store hits.
//
// The protocol is lease-based: a worker acquires a lease on one cell,
// heartbeats it while computing, and posts the cell's results back. A
// lease whose heartbeats stop (worker death, network partition) expires
// and the cell is requeued, up to a per-cell attempt cap — the same
// retry/watchdog posture the local engine applies per cell (PR 3). Because
// every cell is deterministic in its key, requeues, duplicate completions,
// and store races are all benign: any completion of a cell is THE
// completion.
//
// Determinism is the headline property: a campaign's merged artifact is
// assembled by running the ordinary collection path (bench.Collect) in
// store-only mode, so it is byte-identical whether the cells were computed
// by 1 worker, 40 workers, or served entirely from prior store hits — the
// acceptance test and the CI loopback smoke job pin this.
package campaign

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/store"
)

// Spec describes one campaign: a benchmark subset collected under one
// configuration with a fixed run count. It deliberately mirrors
// bench.CollectOptions' fixed-run subset — adaptive stopping is a local
// feedback loop and does not distribute — so a campaign artifact is
// exactly what `szgate run` with the same flags would produce.
type Spec struct {
	// Benchmarks is the suite subset, in artifact order. Names must be
	// unique and resolvable against spec.FullSuite().
	Benchmarks []string `json:"benchmarks"`
	// Config is the experimental cell configuration shared by every
	// benchmark. The engine must be resolved (zero = compiled); Throughput
	// is rejected — host wall-clock telemetry is non-golden and would break
	// the byte-identity contract.
	Config experiment.Config `json:"config"`
	// Runs is the fixed sample count per benchmark.
	Runs int `json:"runs"`
	// Seed is the master seed; per-benchmark seed bases derive from it via
	// bench.SeedBase.
	Seed uint64 `json:"seed"`
	// Commit labels the merged artifact (optional).
	Commit string `json:"commit,omitempty"`
	// Tenant labels the campaign's owner for fair scheduling and quota
	// accounting. Empty means DefaultTenant. The label does not enter any
	// cell key: a cell computed for one tenant is a store hit for every
	// other, and the merged artifact is tenant-independent.
	Tenant string `json:"tenant,omitempty"`
}

// DefaultTenant is the tenant label applied to campaigns that carry none.
const DefaultTenant = "default"

// tenantOf normalizes a spec's tenant label.
func tenantOf(s Spec) string {
	if s.Tenant == "" {
		return DefaultTenant
	}
	return s.Tenant
}

// Validate rejects specs the farm cannot soundly serve.
func (s *Spec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("campaign: spec names no benchmarks")
	}
	seen := map[string]bool{}
	for _, name := range s.Benchmarks {
		if seen[name] {
			return fmt.Errorf("campaign: benchmark %q listed twice", name)
		}
		seen[name] = true
		if _, ok := BenchByName(name); !ok {
			return fmt.Errorf("campaign: unknown benchmark %q", name)
		}
	}
	if s.Runs < 1 {
		return fmt.Errorf("campaign: runs=%d, need at least 1", s.Runs)
	}
	if s.Config.Throughput {
		return fmt.Errorf("campaign: Throughput is host-local, non-golden telemetry; campaigns collect golden samples only")
	}
	if s.Config.Profile {
		return fmt.Errorf("campaign: Profile inflates every stored block with per-function tables; profile locally with szprof instead")
	}
	return nil
}

// Cells enumerates the campaign's cells in artifact order: one per
// benchmark, each with its derived seed base, checkpoint-compatible cell
// key, and engine-extended store key.
func (s *Spec) Cells() []CellSpec {
	out := make([]CellSpec, 0, len(s.Benchmarks))
	for _, name := range s.Benchmarks {
		base := bench.SeedBase(s.Seed, name)
		cellKey := experiment.CellKey(name, s.Config, s.Runs, base)
		out = append(out, CellSpec{
			Bench:    name,
			Runs:     s.Runs,
			SeedBase: base,
			CellKey:  cellKey,
			StoreKey: store.Extend(cellKey, s.Config.Engine),
		})
	}
	return out
}

// CollectOptions returns the local-collection options this spec mirrors;
// running bench.Collect with them (in store-only mode on the coordinator,
// or directly on one machine) yields the campaign's artifact.
func (s *Spec) CollectOptions() (bench.CollectOptions, error) {
	suite := make([]spec.Benchmark, 0, len(s.Benchmarks))
	for _, name := range s.Benchmarks {
		b, ok := BenchByName(name)
		if !ok {
			return bench.CollectOptions{}, fmt.Errorf("campaign: unknown benchmark %q", name)
		}
		suite = append(suite, b)
	}
	return bench.CollectOptions{
		Suite:  suite,
		Config: s.Config,
		Runs:   s.Runs,
		Seed:   s.Seed,
		Commit: s.Commit,
	}, nil
}

// CellSpec is one unit of farm work: a single benchmark's sample block.
type CellSpec struct {
	Bench    string `json:"bench"`
	Runs     int    `json:"runs"`
	SeedBase uint64 `json:"seed_base"`
	// CellKey is the checkpoint-compatible fingerprint; StoreKey extends it
	// with the engine tag and semantics generation (store addressing).
	CellKey  string `json:"cell_key"`
	StoreKey string `json:"store_key"`
}

// BenchByName resolves a benchmark name against the full suite (the 18
// paper benchmarks plus the five C++ ones).
func BenchByName(name string) (spec.Benchmark, bool) {
	for _, b := range spec.FullSuite() {
		if b.Name == name {
			return b, true
		}
	}
	return spec.Benchmark{}, false
}

// SuiteNames returns the names of the given benchmarks, for building specs
// from resolved suites.
func SuiteNames(suite []spec.Benchmark) []string {
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	return names
}

// AllBenchNames lists every resolvable benchmark name, sorted — for error
// messages and CLI help.
func AllBenchNames() []string {
	var names []string
	for _, b := range spec.FullSuite() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}
