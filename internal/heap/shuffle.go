package heap

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rng"
)

// DefaultShuffleN is the shuffling-layer depth the paper settles on after
// NIST testing (§3.2): N = 256 randomizes the cache-index bits of heap
// addresses as well as DieHard does, at a fraction of the cost.
const DefaultShuffleN = 256

// Shuffle is STABILIZER's shuffling layer (Figure 1): it wraps a
// deterministic base allocator in a size-N array per size class. At first
// use the array is filled with N objects from the base heap and shuffled
// with Fisher-Yates. Each malloc allocates a fresh object from the base
// heap, swaps it with a random array slot, and returns the swapped-out
// pointer; each free swaps the freed pointer into a random slot and returns
// the displaced pointer to the base heap. malloc and free are each one
// iteration of the inside-out Fisher-Yates shuffle.
type Shuffle struct {
	base  Allocator
	r     *rng.Marsaglia
	n     int
	slots [numClasses][]mem.Addr
	sizes map[mem.Addr]uint64 // live (handed-out) object -> request size
}

// NewShuffle wraps base in a shuffling layer of depth n (use
// DefaultShuffleN), drawing randomness from r.
func NewShuffle(base Allocator, r *rng.Marsaglia, n int) *Shuffle {
	if n <= 0 {
		panic("heap: shuffle layer depth must be positive")
	}
	return &Shuffle{base: base, r: r, n: n, sizes: make(map[mem.Addr]uint64)}
}

// Name implements Allocator.
func (s *Shuffle) Name() string { return "shuffle(" + s.base.Name() + ")" }

// fill performs the startup fill for one size class: N base allocations
// followed by a Fisher-Yates shuffle.
func (s *Shuffle) fill(c int) []mem.Addr {
	arr := make([]mem.Addr, s.n)
	sz := classSize(c)
	for i := range arr {
		arr[i] = s.base.Alloc(sz)
	}
	s.r.Shuffle(len(arr), func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
	s.slots[c] = arr
	return arr
}

// Alloc implements Allocator.
func (s *Shuffle) Alloc(size uint64) mem.Addr {
	c := sizeClass(size)
	if c >= numClasses {
		// Large objects bypass the layer, as in the paper (STABILIZER
		// "cannot break apart large heap allocations").
		a := s.base.Alloc(size)
		s.sizes[a] = size
		return a
	}
	arr := s.slots[c]
	if arr == nil {
		arr = s.fill(c)
	}
	p := s.base.Alloc(classSize(c))
	i := s.r.Intn(s.n)
	p, arr[i] = arr[i], p
	s.sizes[p] = size
	return p
}

// Free implements Allocator.
func (s *Shuffle) Free(addr mem.Addr) {
	size, ok := s.sizes[addr]
	if !ok {
		panic(fmt.Sprintf("heap: shuffle free of unknown address %#x", uint64(addr)))
	}
	delete(s.sizes, addr)
	c := sizeClass(size)
	if c >= numClasses {
		s.base.Free(addr)
		return
	}
	arr := s.slots[c]
	if arr == nil {
		arr = s.fill(c)
	}
	i := s.r.Intn(s.n)
	addr, arr[i] = arr[i], addr
	s.base.Free(addr)
}
