package experiment

import (
	"os"
	"sync/atomic"

	"repro/internal/obs"
)

// The engine's observability hooks read one process-wide scope. A scope
// rather than a context value because instrumentation reaches places with
// no context (the compile cache, the global progress shim), and because a
// campaign is one process-wide activity anyway. Everything degrades to
// no-ops when unset: obs metrics, loggers, and tracers are all
// nil-receiver safe.

var obsScope atomic.Pointer[obs.Scope]

// SetObs installs the observability scope the engine reports into:
// metrics for the pool / compile cache / retries / checkpoints, the
// structured run log, and the span tracer. nil (the default) disables all
// of it. Not for concurrent use with a running sweep.
func SetObs(s *obs.Scope) { obsScope.Store(s) }

// Obs returns the installed scope, or nil.
func Obs() *obs.Scope { return obsScope.Load() }

func obsMetrics() *obs.Registry {
	if s := obsScope.Load(); s != nil {
		return s.Metrics
	}
	return nil
}

func obsLog() *obs.Logger {
	if s := obsScope.Load(); s != nil {
		return s.Log
	}
	return nil
}

func obsTrace() *obs.Tracer {
	if s := obsScope.Load(); s != nil {
		return s.Trace
	}
	return nil
}

// obsF aliases obs.F for terse structured-log fields at call sites.
func obsF(key string, value any) obs.Field { return obs.F(key, value) }

// ObsFiles configures InstallObs: each non-empty path enables one sink.
type ObsFiles struct {
	// Metrics is written a registry snapshot at Flush time. Golden by
	// default — counters and deterministic histograms only, byte-identical
	// across worker counts for a fixed seed. Full adds the wall-clock
	// histograms and gauges (real, but not reproducible).
	Metrics string
	Full    bool
	// Trace is written Chrome trace-event JSON of the engine spans
	// (compile/link/run/verify/checkpoint) at Flush time. Wall-clock
	// timestamps: never golden.
	Trace string
	// Log receives the structured JSONL run log as the campaign executes,
	// at LogLevel ("info" when empty). Wall-clock stamped.
	Log      string
	LogLevel string
}

// InstallObs builds the scope a CLI campaign reports into, installs it
// process-wide (SetObs), and returns a flush function that writes the
// -metrics and -trace artifacts — call it once, after the campaign, even
// on the error path, so a failed run still leaves its telemetry behind.
// With no paths set the scope still collects (the cost is a few atomic
// increments) but nothing is written. The flush also closes the log file.
func InstallObs(files ObsFiles) (flush func() error, err error) {
	scope := obs.NewScope()
	// Validate the level even when no log file is requested: a typo in
	// -log-level should be an error, not silently ignored.
	level := obs.LevelInfo
	if files.LogLevel != "" {
		level, err = obs.ParseLevel(files.LogLevel)
		if err != nil {
			return nil, err
		}
	}
	var logFile *os.File
	if files.Log != "" {
		logFile, err = os.Create(files.Log)
		if err != nil {
			return nil, err
		}
		scope.Log = obs.NewLogger(logFile, level).WallClock()
	}
	SetObs(scope)
	return func() error {
		var firstErr error
		if files.Metrics != "" {
			buf, err := scope.Metrics.Snapshot(files.Full).Encode()
			if err == nil {
				err = os.WriteFile(files.Metrics, buf, 0o644)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if files.Trace != "" {
			f, err := os.Create(files.Trace)
			if err == nil {
				err = obs.WriteTraceJSON(f, scope.Trace.Events())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if logFile != nil {
			if err := logFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
