package ir

import (
	"testing"
	"testing/quick"
)

func TestGenerateProducesValidModules(t *testing.T) {
	f := func(seed uint64) bool {
		m := Generate(seed%1000, GenConfig{})
		return m.Validate() == nil && m.FuncIndex("main") >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(42, GenConfig{})
	b := Generate(42, GenConfig{})
	if a.String() != b.String() {
		t.Fatal("same seed generated different modules")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(1, GenConfig{})
	b := Generate(2, GenConfig{})
	if a.String() == b.String() {
		t.Fatal("different seeds generated identical modules")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	m := Generate(7, GenConfig{MaxFuncs: 1, MaxGlobals: 1, MaxDepth: 1})
	// main + at most 1 helper.
	if len(m.Funcs) > 2 {
		t.Fatalf("%d functions with MaxFuncs=1", len(m.Funcs))
	}
	if len(m.Globals) > 1 {
		t.Fatalf("%d globals with MaxGlobals=1", len(m.Globals))
	}
}

func TestGenerateCallGraphIsAcyclic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		m := Generate(seed, GenConfig{})
		// Every call must target a strictly smaller function index (the
		// generator's termination guarantee).
		for fi, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == OpCall && int(in.Sym) >= fi {
						t.Fatalf("seed %d: %s calls forward/self (f%d -> f%d)",
							seed, f.Name, fi, in.Sym)
					}
				}
			}
		}
	}
}
