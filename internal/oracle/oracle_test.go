package oracle

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/trap"
)

// churnFixture is a small deterministic program with heap churn, stack and
// global traffic, and regular sinks — enough surface for every axis of the
// matrix to act on.
func churnFixture() *ir.Module {
	mb := ir.NewModuleBuilder("churn")
	mb.GlobalInit("g0", []int64{3, 5, 7, 11})
	f := mb.Func("main", 0)
	s0 := f.Slot("s0", 16)
	f.StoreS(s0, 0, ir.NoReg, f.ConstI(9))
	acc := f.ConstI(1)
	f.LoopN(24, func(i ir.Reg) {
		p := f.Alloc(64)
		f.StoreH(p, 0, ir.NoReg, f.Add(acc, i))
		f.StoreH(p, 56, ir.NoReg, f.LoadG(0, 8, ir.NoReg))
		v := f.Add(f.LoadH(p, 0, ir.NoReg), f.LoadH(p, 56, ir.NoReg))
		f.StoreG(0, 16, ir.NoReg, v)
		f.StoreS(s0, 8, ir.NoReg, v)
		f.Sink(f.Add(v, f.LoadS(s0, 0, ir.NoReg)))
		f.Free(p)
	})
	f.Sink(f.LoadG(0, 16, ir.NoReg))
	f.Ret(f.ConstI(0))
	return mb.Module()
}

// leakFixture allocates without freeing, so live objects accumulate and the
// allocators' address streams drift apart quickly.
func leakFixture() *ir.Module {
	mb := ir.NewModuleBuilder("leak")
	f := mb.Func("main", 0)
	f.LoopN(40, func(i ir.Reg) {
		p := f.Alloc(64)
		f.StoreH(p, 0, ir.NoReg, i)
		f.Sink(f.LoadH(p, 0, ir.NoReg))
	})
	f.Ret(f.ConstI(0))
	return mb.Module()
}

func TestVerifyCleanFixture(t *testing.T) {
	res, err := Verify("churn", churnFixture(), Options{})
	if err != nil {
		t.Fatalf("verify failed on a clean fixture: %v", err)
	}
	want := 3 * 4 * 4 * 2 // seeds x levels x allocators x engines
	if res.Cells != want {
		t.Fatalf("ran %d cells, want %d", res.Cells, want)
	}
	if res.Arch == 0 {
		t.Fatal("zero arch digest")
	}
	if len(res.Exec) != 4 {
		t.Fatalf("got exec digests for %d levels, want 4", len(res.Exec))
	}
}

func TestVerifyGeneratedPrograms(t *testing.T) {
	for _, seed := range []uint64{3, 17, 101} {
		m := ir.Generate(seed, ir.GenConfig{})
		if _, err := Verify("gen", m, Options{Seeds: []uint64{1, 2}}); err != nil {
			var div *Divergence
			if errors.As(err, &div) {
				t.Fatalf("seed %d:\n%s", seed, div.Report())
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFaultEquivalence: programs with planted heap-misuse faults must trap
// with the same kind in every cell — a trap is a valid outcome as long as it
// is layout- and optimization-invariant.
func TestFaultEquivalence(t *testing.T) {
	for _, seed := range []uint64{5, 23, 77, 131} {
		m := ir.Generate(seed, ir.GenConfig{Faults: true})
		if _, err := Verify("fault", m, Options{Seeds: []uint64{1, 2}}); err != nil {
			var div *Divergence
			if errors.As(err, &div) {
				t.Fatalf("seed %d:\n%s", seed, div.Report())
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// oddPageAlloc is the planted layout-dependent bug: allocation fails
// whenever the returned object lands on an odd page. Which allocation (if
// any) that is depends on the allocator policy and the ASLR seed — exactly
// the class of bug the oracle exists to catch.
type oddPageAlloc struct {
	heap.Allocator
}

func (o oddPageAlloc) Alloc(size uint64) (mem.Addr, error) {
	a, err := o.Allocator.Alloc(size)
	if err != nil {
		return 0, err
	}
	if a.Page()%2 == 1 {
		return 0, trap.New(trap.OutOfMemory, "planted: object at %#x on an odd page", uint64(a))
	}
	return a, nil
}

func TestPlantedLayoutBugCaught(t *testing.T) {
	opts := Options{
		wrapAlloc: func(a heap.Allocator) heap.Allocator { return oddPageAlloc{a} },
	}
	_, err := Verify("planted", leakFixture(), opts)
	if err == nil {
		t.Fatal("planted layout-dependent bug not caught")
	}
	var div *Divergence
	if !errors.As(err, &div) {
		t.Fatalf("want a *Divergence, got: %v", err)
	}
	if div.Axis != AxisLayout {
		t.Fatalf("divergence on axis %q, want %q", div.Axis, AxisLayout)
	}
	if div.RefEvent == nil && div.GotEvent == nil {
		t.Fatalf("divergence not localized to an event:\n%s", div.Report())
	}
	rep := div.Report()
	if !strings.Contains(rep, "first diverging retired instruction") {
		t.Fatalf("report does not name the first diverging retired instruction:\n%s", rep)
	}
	t.Logf("caught:\n%s", rep)
}

func TestVerifyCompiledMissingLevel(t *testing.T) {
	m, err := compiler.Compile(churnFixture(), compiler.Options{Level: compiler.O0, Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	mods := map[compiler.OptLevel]*ir.Module{compiler.O0: m}
	if _, err := VerifyCompiled("churn", mods, Options{}); err == nil {
		t.Fatal("missing level not reported")
	}
}

func TestBuildAllocatorUnknown(t *testing.T) {
	_, err := Verify("churn", churnFixture(), Options{Allocators: []string{"bump"}})
	if err == nil || !strings.Contains(err.Error(), "unknown allocator") {
		t.Fatalf("unknown allocator not reported: %v", err)
	}
}
