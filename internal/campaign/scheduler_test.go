package campaign

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestWeightedFairSchedulingSmallTenantCompletes pins the fairness
// acceptance criterion: a 1-cell smoke campaign submitted behind a
// 100-cell bulk backlog (100x larger, same priority) is granted within the
// first scheduling round and completes while the bulk work is still almost
// entirely in flight.
func TestWeightedFairSchedulingSmallTenantCompletes(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := NewCoordinator(CoordinatorOptions{Store: st, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	// Bulk tenant: 50 campaigns x 2 cells = 100 open cells, distinct seeds
	// so no cell dedupes against another.
	for i := 0; i < 50; i++ {
		spec := testSpec()
		spec.Tenant = "bulk"
		spec.Seed = uint64(3000 + i)
		if _, _, _, err := c.Submit(spec); err != nil {
			t.Fatalf("bulk submit %d: %v", i, err)
		}
	}
	smoke := testSpec()
	smoke.Benchmarks = []string{"astar"}
	smoke.Tenant = "smoke"
	smoke.Seed = 99
	smokeID, _, _, err := c.Submit(smoke)
	if err != nil {
		t.Fatalf("smoke submit: %v", err)
	}

	grants := 0
	for {
		resp := c.Acquire("w")
		if resp.Lease == nil {
			t.Fatalf("scheduler granted nothing with %d cells open", resp.Remaining)
		}
		grants++
		isSmoke := resp.Lease.Campaign == smokeID
		if err := c.Complete(resp.Lease.ID, CompleteRequest{
			Worker: "w", Results: fakeResults(resp.Lease.Runs),
		}); err != nil {
			t.Fatalf("complete: %v", err)
		}
		if isSmoke {
			break
		}
		if grants > 10 {
			t.Fatalf("smoke cell not granted within 10 grants behind a 100-cell backlog")
		}
	}
	// Equal weights alternate tenants, so the single smoke cell goes out in
	// the first round of grants.
	if grants > 2 {
		t.Fatalf("smoke cell granted at position %d, want <= 2", grants)
	}
	stat, ok := c.Status(smokeID)
	if !ok || stat.State != StateDone {
		t.Fatalf("smoke campaign %+v, want done", stat)
	}
	if rep := c.Scaling(); rep.Backlog < 95 {
		t.Fatalf("bulk backlog %d after smoke completed, want >= 95 still open", rep.Backlog)
	}
}

// TestTenantWeightsProportionalGrants pins the smooth-WRR grant sequence: a
// weight-3 tenant receives three of every four grants, interleaved — not
// three in a burst — and the sequence is deterministic.
func TestTenantWeightsProportionalGrants(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := NewCoordinator(CoordinatorOptions{
		Store: st, Obs: obs.NewScope(),
		TenantWeights: map[string]int{"heavy": 3},
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	byCamp := map[string]string{} // campaign id -> tenant
	for i := 0; i < 6; i++ {
		spec := testSpec()
		spec.Benchmarks = []string{"astar"}
		spec.Seed = uint64(500 + i)
		spec.Tenant = "light"
		if i%2 == 0 {
			spec.Tenant = "heavy"
		}
		id, _, _, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		byCamp[id] = spec.Tenant
	}

	var got []string
	for i := 0; i < 4; i++ {
		resp := c.Acquire("w")
		if resp.Lease == nil {
			t.Fatalf("grant %d: nothing granted", i)
		}
		got = append(got, byCamp[resp.Lease.Campaign])
	}
	want := []string{"heavy", "heavy", "light", "heavy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant sequence %v, want %v (smooth 3:1 interleaving)", got, want)
		}
	}
}

// TestPerTenantQuotas: one tenant's overload sheds only that tenant's
// submissions, and the per-tenant inflight cap idles the tenant's surplus
// demand without blocking its neighbor.
func TestPerTenantQuotas(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := NewCoordinator(CoordinatorOptions{
		Store: st, Obs: obs.NewScope(),
		MaxPendingPerTenant: 2, MaxInflightPerTenant: 1,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	big := testSpec() // 2 cells: fills big's quota exactly
	big.Tenant = "big"
	bigID, _, _, err := c.Submit(big)
	if err != nil {
		t.Fatalf("big submit: %v", err)
	}
	over := testSpec()
	over.Benchmarks = []string{"astar"}
	over.Tenant = "big"
	over.Seed = 7
	_, _, _, err = c.Submit(over)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("over-quota submit = %v, want *OverloadError", err)
	}
	if oe.Tenant != "big" || oe.Limit != 2 || oe.RetryAfter <= 0 {
		t.Fatalf("per-tenant shed %+v, want tenant big at limit 2 with a Retry-After", oe)
	}
	if got := c.metrics().Counter("campaign.overload.shed_tenant").Value(); got != 1 {
		t.Fatalf("tenant sheds = %d, want 1", got)
	}

	// The neighbor tenant submits freely past big's quota.
	small := testSpec()
	small.Benchmarks = []string{"astar"}
	small.Tenant = "small"
	small.Seed = 8
	smallID, _, _, err := c.Submit(small)
	if err != nil {
		t.Fatalf("small tenant shed by big's quota: %v", err)
	}
	byCamp := map[string]string{bigID: "big", smallID: "small"}

	// Inflight cap 1: the first two grants land one per tenant; the third
	// finds big capped and small drained, and grants nothing even though
	// big still has a pending cell.
	g1 := c.Acquire("w1")
	g2 := c.Acquire("w2")
	if g1.Lease == nil || g2.Lease == nil {
		t.Fatalf("grants under cap: %+v %+v", g1, g2)
	}
	if byCamp[g1.Lease.Campaign] == byCamp[g2.Lease.Campaign] {
		t.Fatalf("both grants went to tenant %q under inflight cap 1", byCamp[g1.Lease.Campaign])
	}
	g3 := c.Acquire("w3")
	if g3.Lease != nil {
		t.Fatalf("inflight cap breached: %+v", g3.Lease)
	}
	if g3.Remaining != 3 {
		t.Fatalf("remaining = %d, want 3 (1 pending + 2 leased)", g3.Remaining)
	}

	// Completing big's inflight cell frees its next grant.
	bigGrant := g1
	if byCamp[g2.Lease.Campaign] == "big" {
		bigGrant = g2
	}
	if err := c.Complete(bigGrant.Lease.ID, CompleteRequest{
		Worker: "w", Results: fakeResults(bigGrant.Lease.Runs),
	}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	g4 := c.Acquire("w4")
	if g4.Lease == nil || byCamp[g4.Lease.Campaign] != "big" {
		t.Fatalf("grant after completion %+v, want big's second cell", g4.Lease)
	}
}

// TestScalingReportSignals drives the farm on a manual clock and checks
// each autoscaling signal: the backlog/inflight split, the live-worker
// window, lease utilization, completion throughput, and the drain estimate.
func TestScalingReportSignals(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	now := base
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := NewCoordinator(CoordinatorOptions{
		Store: st, Obs: obs.NewScope(), LeaseTTL: time.Minute,
		now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if _, _, _, err := c.Submit(testSpec()); err != nil {
		t.Fatalf("submit: %v", err)
	}

	g1 := c.Acquire("w1")
	if g1.Lease == nil {
		t.Fatalf("no lease")
	}
	rep := c.Scaling()
	if rep.Backlog != 1 || rep.Inflight != 1 || rep.Workers != 1 {
		t.Fatalf("report %+v, want backlog 1 / inflight 1 / workers 1", rep)
	}
	if rep.LeaseUtilization != 1.0 {
		t.Fatalf("utilization %v with every worker busy, want 1", rep.LeaseUtilization)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != DefaultTenant ||
		rep.Tenants[0].Pending != 1 || rep.Tenants[0].Inflight != 1 || rep.Tenants[0].Campaigns != 1 {
		t.Fatalf("tenant breakdown %+v", rep.Tenants)
	}
	if rep.CompletionsPerSecond != 0 || rep.EstimatedDrainSeconds != 0 {
		t.Fatalf("throughput claimed with fewer than two completions: %+v", rep)
	}

	// Two completions two seconds apart, observed two seconds later: 2
	// completions over a 4s span is 0.5 cells/s.
	if err := c.Complete(g1.Lease.ID, CompleteRequest{Worker: "w1", Results: fakeResults(g1.Lease.Runs)}); err != nil {
		t.Fatalf("complete 1: %v", err)
	}
	now = base.Add(2 * time.Second)
	g2 := c.Acquire("w2")
	if g2.Lease == nil {
		t.Fatalf("no second lease")
	}
	if err := c.Complete(g2.Lease.ID, CompleteRequest{Worker: "w2", Results: fakeResults(g2.Lease.Runs)}); err != nil {
		t.Fatalf("complete 2: %v", err)
	}
	now = base.Add(4 * time.Second)
	next := testSpec()
	next.Seed = 4040
	if _, _, _, err := c.Submit(next); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	rep = c.Scaling()
	if rep.Workers != 2 {
		t.Fatalf("workers = %d, want 2", rep.Workers)
	}
	if rep.Backlog != 2 || rep.Inflight != 0 || rep.LeaseUtilization != 0 {
		t.Fatalf("report %+v, want 2 pending, nothing leased", rep)
	}
	if rep.CompletionsPerSecond != 0.5 {
		t.Fatalf("throughput %v, want 0.5 (2 completions over 4s)", rep.CompletionsPerSecond)
	}
	if rep.EstimatedDrainSeconds != 4 {
		t.Fatalf("drain estimate %v, want 4 (2 open cells at 0.5/s)", rep.EstimatedDrainSeconds)
	}

	// Workers silent for two lease TTLs retire from the live count.
	now = base.Add(10 * time.Minute)
	rep = c.Scaling()
	if rep.Workers != 0 || rep.LeaseUtilization != 0 {
		t.Fatalf("report %+v, want all workers retired after 2 TTLs of silence", rep)
	}
}
