package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// timelineJournal is a hand-built journal for one campaign that exercises
// every message the reconstruction reads: submit, a grant that expires on
// worker A (lost time + requeue), a coordinator takeover, a second grant
// that completes on worker B with its compute span, a second cell
// completing normally, and the terminal event. Timestamps are nanoseconds
// on a fake epoch (base 1e12) so the derived seconds are easy to assert.
const timelineJournal = `{"level":"info","msg":"campaign submitted","campaign":"c0001","cells":2,"store_hits":0,"runs":3,"seed":1,"tenant":"ci","trace":"aabbccdd00112233","t_wall_ns_nongolden":1000000000000}
{"level":"info","msg":"lease granted","campaign":"c0001","cell":"astar","worker":"w-a","lease":1,"attempt":1,"tenant":"ci","trace":"aabbccdd00112233","span":"c0001/astar#1","t_wall_ns_nongolden":1000500000000}
{"level":"info","msg":"lease granted","campaign":"c0001","cell":"bzip2","worker":"w-b","lease":2,"attempt":1,"tenant":"ci","trace":"aabbccdd00112233","span":"c0001/bzip2#1","t_wall_ns_nongolden":1000600000000}
{"level":"info","msg":"cell span","campaign":"c0001","cell":"bzip2","worker":"w-b","attempt":1,"trace":"aabbccdd00112233","span":"c0001/bzip2#1","start_unix_ns":1000700000000,"end_unix_ns":1001700000000,"t_wall_ns_nongolden":1001800000000}
{"level":"info","msg":"cell complete","campaign":"c0001","cell":"bzip2","worker":"w-b","runs":3,"trace":"aabbccdd00112233","span":"c0001/bzip2#1","t_wall_ns_nongolden":1001800000000}
{"level":"info","msg":"lease expired","campaign":"c0001","cell":"astar","worker":"w-a","attempt":1,"trace":"aabbccdd00112233","span":"c0001/astar#1","t_wall_ns_nongolden":1030500000000}
{"level":"info","msg":"cell requeued","campaign":"c0001","cell":"astar","attempt":1,"reason":"lease expired (worker presumed dead)","trace":"aabbccdd00112233","t_wall_ns_nongolden":1030500000001}
{"level":"info","msg":"campaign restored from durable state","campaign":"c0001","state":"running","cells":2,"recovered_from_store":0,"t_wall_ns_nongolden":1031000000000}
{"level":"info","msg":"lease granted","campaign":"c0001","cell":"astar","worker":"w-b","lease":3,"attempt":2,"tenant":"ci","trace":"aabbccdd00112233","span":"c0001/astar#2","t_wall_ns_nongolden":1031200000000}
{"level":"info","msg":"cell span","campaign":"c0001","cell":"astar","worker":"w-b","attempt":2,"trace":"aabbccdd00112233","span":"c0001/astar#2","start_unix_ns":1031300000000,"end_unix_ns":1033300000000,"t_wall_ns_nongolden":1033400000000}
{"level":"info","msg":"cell complete","campaign":"c0001","cell":"astar","worker":"w-b","runs":3,"trace":"aabbccdd00112233","span":"c0001/astar#2","t_wall_ns_nongolden":1033400000000}
{"level":"info","msg":"campaign complete","campaign":"c0001","cells":2,"t_wall_ns_nongolden":1033400000001}
`

// TestBuildTimelineMergedTrace pins the reconstruction over a journal that
// spans two workers and a coordinator takeover: the output is a valid
// Chrome trace, the processes and cell lanes are laid out as documented,
// and the straggler report derives the right numbers.
func TestBuildTimelineMergedTrace(t *testing.T) {
	tl, err := BuildTimeline([]byte(timelineJournal), "c0001")
	if err != nil {
		t.Fatalf("BuildTimeline: %v", err)
	}
	if tl.Trace != "aabbccdd00112233" {
		t.Fatalf("trace = %q", tl.Trace)
	}

	buf, err := tl.EncodeTrace()
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	if err := obs.ValidateTrace(buf); err != nil {
		t.Fatalf("reconstructed trace fails validation: %v\n%s", err, buf)
	}

	// Multi-process layout: the coordinator plus both workers appear as
	// named processes, and both cells as named lanes.
	text := string(buf)
	for _, want := range []string{
		`"name":"coordinator"`, `"name":"worker w-a"`, `"name":"worker w-b"`,
		`"name":"astar"`, `"name":"bzip2"`,
		`"name":"coordinator takeover"`,
		`"name":"astar attempt 1 (expired)"`,
		`"name":"astar compute"`, `"name":"bzip2 compute"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %s", want)
		}
	}

	rep := tl.Report
	if rep.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", rep.Failovers)
	}
	if rep.CriticalPath != "astar" {
		t.Errorf("critical path = %q, want astar (finished last)", rep.CriticalPath)
	}
	if len(rep.Cells) != 2 || rep.Cells[0].Cell != "astar" {
		t.Fatalf("cells = %+v, want astar first (straggler order)", rep.Cells)
	}
	astar, bzip2 := rep.Cells[0], rep.Cells[1]
	if astar.Attempts != 2 || astar.Requeues != 1 {
		t.Errorf("astar attempts/requeues = %d/%d, want 2/1", astar.Attempts, astar.Requeues)
	}
	// astar attempt 1 held a lease from t=0.5s to its expiry at t=30.5s.
	if got := astar.LostSeconds; got < 29.9 || got > 30.1 {
		t.Errorf("astar lost = %vs, want ~30s", got)
	}
	if got := astar.QueueWaitSeconds; got < 0.49 || got > 0.51 {
		t.Errorf("astar queue wait = %vs, want 0.5s", got)
	}
	if got := astar.RunSeconds; got < 1.99 || got > 2.01 {
		t.Errorf("astar run = %vs, want 2s", got)
	}
	if want := []string{"w-a", "w-b"}; strings.Join(astar.Workers, ",") != strings.Join(want, ",") {
		t.Errorf("astar workers = %v, want %v", astar.Workers, want)
	}
	if bzip2.Attempts != 1 || bzip2.LostSeconds != 0 {
		t.Errorf("bzip2 attempts/lost = %d/%v", bzip2.Attempts, bzip2.LostSeconds)
	}
	if rep.TotalSeconds < 33.3 || rep.TotalSeconds > 33.5 {
		t.Errorf("total = %vs, want ~33.4s", rep.TotalSeconds)
	}

	if r := rep.Render(); !strings.Contains(r, "critical path: astar") || !strings.Contains(r, "w-a,w-b") {
		t.Errorf("report render missing expected lines:\n%s", r)
	}
}

// TestBuildTimelineDeterministic pins that reconstruction is a pure
// function of the journal bytes: building twice yields byte-identical
// trace output. This is what lets CI archive a timeline artifact and
// still trust a later re-derivation.
func TestBuildTimelineDeterministic(t *testing.T) {
	a, err := BuildTimeline([]byte(timelineJournal), "c0001")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTimeline([]byte(timelineJournal), "c0001")
	if err != nil {
		t.Fatal(err)
	}
	bufA, errA := a.EncodeTrace()
	bufB, errB := b.EncodeTrace()
	if errA != nil || errB != nil {
		t.Fatalf("encode: %v / %v", errA, errB)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("double reconstruction differs")
	}
	if a.Report.Render() != b.Report.Render() {
		t.Fatal("double report render differs")
	}
}

// TestBuildTimelineTornTail pins that a torn last line (crash mid-append)
// degrades to a skipped-line count, not a failed reconstruction, and that
// attempts left open by the truncation close at the log's end.
func TestBuildTimelineTornTail(t *testing.T) {
	journal := timelineJournal[:strings.LastIndex(strings.TrimSpace(timelineJournal), "\n")]
	journal += "\n" + `{"level":"info","msg":"campaign comp` // torn
	tl, err := BuildTimeline([]byte(journal), "c0001")
	if err != nil {
		t.Fatalf("BuildTimeline over torn journal: %v", err)
	}
	if tl.Report.MalformedLines != 1 {
		t.Errorf("malformed = %d, want 1", tl.Report.MalformedLines)
	}
	buf, err := tl.EncodeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(buf); err != nil {
		t.Fatalf("torn-tail trace fails validation: %v", err)
	}
}
