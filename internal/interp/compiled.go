// The compiled execution engine.
//
// runCompiled executes a pre-lowered module (see lower.go): each block is a
// flat slice of closures driven by a loop that mirrors the walk engine's
// exec()/call() step for step. The engines must be indistinguishable to
// every observer — machine counters, Recorder digests, Observer windows,
// traps, exceptions, profiles — so each divergence-capable point below
// carries the walk line it mirrors in spirit. What the compiled engine
// changes is pure host-side cost:
//
//   - dispatch: a flat switch over pre-decoded cinstr structs (one jump
//     per possibly-fused instruction) instead of a tree-walk switch with
//     per-operand decoding, with copy-propagated and dead-code-eliminated
//     register traffic (see lower.go);
//   - machine entry: Data8/FetchPre fast paths (see machine/fastpath.go)
//     instead of the general Data/Fetch, with instruction-fetch set/tag
//     lookups memoized per layout epoch;
//   - allocation: register files and frame slots come from a grow-only
//     arena released on return, and per-block runtime bookkeeping reuses
//     pre-bound closures, so steady-state execution does not allocate.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trap"
)

// cframe is one activation of the compiled engine. Frames are reused by
// recursion depth; regs and stack come from the arena.
type cframe struct {
	fn         int
	lf         *lowFunc
	regs       []uint64
	stack      []uint64
	frameBase  mem.Addr
	ep         *fnEpoch
	blockStart uint64
}

// arena is a grow-only bump allocator for register files and frame slots.
// Allocations are zeroed (matching the fresh make() the walk engine does
// per call) and released wholesale when the call returns, so steady-state
// execution stops paying the allocator.
type arena struct {
	blocks [][]uint64
	bi     int
	top    int
}

type arenaMark struct{ bi, top int }

const arenaBlockWords = 1 << 16

func (a *arena) mark() arenaMark { return arenaMark{a.bi, a.top} }

func (a *arena) release(m arenaMark) { a.bi, a.top = m.bi, m.top }

func (a *arena) alloc(n int) []uint64 {
	for {
		if a.bi < len(a.blocks) {
			blk := a.blocks[a.bi]
			if a.top+n <= len(blk) {
				s := blk[a.top : a.top+n : a.top+n]
				a.top += n
				clear(s)
				return s
			}
			if a.bi+1 < len(a.blocks) && n <= len(a.blocks[a.bi+1]) {
				a.bi++
				a.top = 0
				continue
			}
		}
		size := arenaBlockWords
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]uint64, size))
		a.bi = len(a.blocks) - 1
		a.top = 0
	}
}

// epochKey identifies one layout epoch of one function: the code base plus
// the identity of the block-offset permutation the runtime handed out.
// core's permuteBlocks allocates a fresh offsets slice per copy and never
// mutates it afterwards (activations snapshot it), so the first element's
// address identifies the permutation — and, being reachable from the key,
// stays alive for exactly as long as the cache entry, so the address cannot
// be recycled out from under us.
type epochKey struct {
	fn       int
	codeBase mem.Addr
	offs     *uint64
}

// fnEpoch is the per-epoch precomputation for one function: each block's
// resolved PC and terminator PC, plus its instruction-fetch lines with
// set-index/tag lookups memoized (machine.PrepareFetch). Only a
// re-randomization boundary — a new epochKey — pays this cost again.
type fnEpoch struct {
	blocks []epochBlock
	lines  []machine.PreLine
}

type epochBlock struct {
	pc       mem.Addr
	termPC   mem.Addr
	fetchOff int32
	fetchEnd int32
	// tlbGen/l1iGen record the TLB and L1I mutation generations
	// (machine.Cache.Gen) at the last execution where every fetch line of
	// this block MRU-hit. While both generations are unchanged no tag in
	// either cache has moved, so the block's lines are provably still
	// MRU-resident and the fetch collapses to two bulk hit-counter adds
	// without re-probing. Initialized to ^0, which Gen never reaches, so a
	// freshly built epoch always verifies before taking the bulk path.
	tlbGen uint64
	l1iGen uint64
}

// epochCacheCap bounds the per-run epoch cache. Eviction is safe — live
// frames hold their own *fnEpoch — and only costs recomputation.
const epochCacheCap = 1024

// cvm is the compiled engine's per-run state: the same fields as the walk
// engine's interp, plus the lowered module, arena, frame pool, and epoch
// cache.
type cvm struct {
	lm   *lowModule
	m    *ir.Module
	mach *machine.Machine
	rt   Runtime

	// native caches the concrete *NativeRuntime when the runtime is exactly
	// that type, letting the hot path skip interface calls that are no-ops
	// or plain field reads for the static layout (BeforeCall, Tick,
	// RelocCall, RelocGlobal, CodeBase, GlobalAddr, BlockOffsets).
	native      bool
	funcAddrs   []mem.Addr
	globalAddrs []mem.Addr

	globals [][]uint64
	objects []heapObject
	freeObj []int

	sp        mem.Addr
	stackLow  mem.Addr
	output    uint64
	steps     uint64
	maxSteps  uint64
	rec       *Recorder
	interrupt func() error
	nextPoll  uint64
	stopAt    uint64
	callStack []callRecord
	ras       [rasDepth]mem.Addr
	rasLen    int
	profile   []uint64
	obs       Observer
	obsLast   machine.Counters
	obsStack  []int

	arena     arena
	frames    []*cframe
	epochs    map[epochKey]*fnEpoch
	epochHot  []epochHot
	tickStack func() []mem.Addr

	// Open-coded Data8 probe state (machine.MRUView): the live TLB and L1D
	// tag arrays plus lookup geometry, cached here so fastData8 inlines
	// into the dispatch loop. Slice identities are stable for the machine's
	// lifetime (Flush clears in place).
	tlbTags, l1dTags   []uint64
	tlbShift, l1dShift uint
	tlbMask, l1dMask   uint64
	tlbWays, l1dWays   uint64
	lineMask           uint64
}

// epochHot is a per-function one-entry epoch cache in front of the map:
// between re-randomizations every call to a function sees the same
// (codeBase, offsets) snapshot, so the common case is a pointer compare
// instead of a map lookup.
type epochHot struct {
	codeBase mem.Addr
	offs     *uint64
	ep       *fnEpoch
}

// runCompiled executes module m with the compiled engine. It mirrors
// runWalk's setup, fault handling, and exit recording exactly.
func runCompiled(m *ir.Module, opts Options) (res Result, err error) {
	en := &cvm{
		lm:        lowered(m),
		m:         m,
		mach:      opts.Machine,
		rt:        opts.Runtime,
		maxSteps:  opts.MaxSteps,
		interrupt: opts.Interrupt,
		rec:       opts.Record,
		epochs:    make(map[epochKey]*fnEpoch),
	}
	en.epochHot = make([]epochHot, len(m.Funcs))
	en.rearmStop()
	en.tlbTags, en.tlbShift, en.tlbMask, en.tlbWays = opts.Machine.TLB.MRUView()
	en.l1dTags, en.l1dShift, en.l1dMask, en.l1dWays = opts.Machine.L1D.MRUView()
	en.lineMask = opts.Machine.L1D.LineSize() - 1
	if nrt, ok := opts.Runtime.(*NativeRuntime); ok {
		en.native = true
		en.funcAddrs = nrt.FuncAddrs
		en.globalAddrs = nrt.GlobalAddrs
	}
	if opts.Profile {
		en.profile = make([]uint64, len(m.Funcs))
	}
	if opts.Observer != nil {
		en.obs = opts.Observer
		en.obsLast = opts.Machine.Snapshot()
	}
	en.globals = make([][]uint64, len(m.Globals))
	for i, g := range m.Globals {
		words := make([]uint64, g.Size/8)
		for j, v := range g.Init {
			if j < len(words) {
				words[j] = uint64(v)
			}
		}
		en.globals[i] = words
	}
	en.sp = opts.Runtime.StackBase()
	en.stackLow = en.sp - mem.Addr(opts.StackLimit)
	// Pre-bind the stack-snapshot closure Tick receives, so block dispatch
	// does not allocate a method value per block as the walk engine does.
	// (Method-value allocation is host-side only; Tick sees the same data.)
	en.tickStack = func() []mem.Addr {
		out := make([]mem.Addr, len(en.callStack))
		for i, c := range en.callStack {
			out[i] = c.retPC
		}
		return out
	}

	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(runError); ok {
				err = e.err
				if en.rec != nil {
					if tr := trap.AsTrap(err); tr != nil {
						en.rec.observe(en.steps, EvTrap, uint64(tr.Kind), 0)
					}
				}
				return
			}
			panic(r)
		}
	}()

	entry := m.Entry()
	ret, exc := en.call(entry, nil, nil, 0, 0)
	if exc != nil {
		if en.rec != nil {
			en.rec.observe(en.steps, EvExit, 1, *exc)
		}
		return Result{}, &UncaughtError{Value: *exc}
	}
	if en.rec != nil {
		en.rec.observe(en.steps, EvExit, 0, ret)
	}

	return Result{
		Output:       en.output,
		Cycles:       en.mach.Cycles,
		Instructions: en.mach.Instructions,
		Seconds:      en.mach.Seconds(),
		Profile:      en.profile,
	}, nil
}

func (en *cvm) fail(err error) { panic(runError{err}) }

func (en *cvm) failf(format string, args ...any) {
	en.fail(fmt.Errorf("interp: "+format, args...))
}

func (en *cvm) curFnName() string {
	if n := len(en.callStack); n > 0 {
		return en.m.Funcs[en.callStack[n-1].fn].Name
	}
	return ""
}

func (en *cvm) trap(kind trap.Kind, format string, args ...any) {
	tr := trap.New(kind, format, args...)
	tr.Step = en.steps
	tr.Fn = en.curFnName()
	en.fail(tr)
}

func (en *cvm) runtimeErr(err error) {
	if tr := trap.AsTrap(err); tr != nil {
		tr.Step = en.steps
		tr.Fn = en.curFnName()
	}
	en.fail(err)
}

func (en *cvm) obsFlush() {
	if en.obs == nil {
		return
	}
	cur := en.mach.Snapshot()
	delta := cur.Sub(en.obsLast)
	en.obsLast = cur
	en.obsStack = en.obsStack[:0]
	for _, c := range en.callStack {
		en.obsStack = append(en.obsStack, c.fn)
	}
	en.obs.ProfileWindow(en.obsStack, delta)
}

// frame returns the reusable frame for the given recursion depth. Frames
// are heap-allocated once and pointer-stable.
func (en *cvm) frame(depth int) *cframe {
	for len(en.frames) <= depth {
		en.frames = append(en.frames, &cframe{})
	}
	return en.frames[depth]
}

// globalAddr resolves a global's address, charging the relocation-table
// indirection exactly as the walk engine's globalAccess does.
func (en *cvm) globalAddr(fr *cframe, g int) mem.Addr {
	if en.native {
		return en.globalAddrs[g]
	}
	if slot, ok := en.rt.RelocGlobal(fr.fn, g); ok {
		en.mach.Data8(slot)
		en.mach.Retire(1)
	}
	return en.rt.GlobalAddr(g)
}

// epochFor returns the layout-epoch precomputation for one activation's
// (codeBase, blockOffs) snapshot, building it on first sight.
func (en *cvm) epochFor(lf *lowFunc, codeBase mem.Addr, blockOffs []uint64) *fnEpoch {
	var op *uint64
	if len(blockOffs) > 0 {
		op = &blockOffs[0]
	}
	if h := &en.epochHot[lf.fn]; h.ep != nil && h.codeBase == codeBase && h.offs == op {
		return h.ep
	}
	k := epochKey{fn: lf.fn, codeBase: codeBase, offs: op}
	if ep, ok := en.epochs[k]; ok {
		en.epochHot[lf.fn] = epochHot{codeBase: codeBase, offs: op, ep: ep}
		return ep
	}
	ep := &fnEpoch{blocks: make([]epochBlock, len(lf.blocks))}
	for bi := range lf.blocks {
		b := &lf.blocks[bi]
		off := b.off
		if blockOffs != nil {
			off = blockOffs[bi]
		}
		pc := codeBase + mem.Addr(off)
		start := int32(len(ep.lines))
		ep.lines = en.mach.PrepareFetch(pc, b.size, ep.lines)
		ep.blocks[bi] = epochBlock{
			pc:       pc,
			termPC:   pc + mem.Addr(b.size) - mem.Addr(b.term.encSize),
			fetchOff: start,
			fetchEnd: int32(len(ep.lines)),
			tlbGen:   ^uint64(0),
			l1iGen:   ^uint64(0),
		}
	}
	if len(en.epochs) >= epochCacheCap {
		clear(en.epochs)
	}
	en.epochs[k] = ep
	en.epochHot[lf.fn] = epochHot{codeBase: codeBase, offs: op, ep: ep}
	return ep
}

// call transfers control to function fn. It mirrors the walk engine's
// call() exactly: same check order, same machine charges, same RAS and
// observer behaviour. Arguments are copied directly from the caller's
// registers (argRegs indexes caller.regs); the entry call passes nil.
func (en *cvm) call(fn int, caller *cframe, argRegs []int32, callerPC mem.Addr, depth int) (uint64, *uint64) {
	lf := en.lm.funcs[fn]
	f := lf.f
	if len(argRegs) != f.Params {
		en.failf("call to %s with %d args, want %d", f.Name, len(argRegs), f.Params)
	}

	en.callStack = append(en.callStack, callRecord{fn: fn, retPC: callerPC})

	var pad uint64
	var codeBase mem.Addr
	var blockOffs []uint64
	if en.native {
		// BeforeCall and BlockOffsets are no-ops for the static layout.
		codeBase = en.funcAddrs[fn]
	} else {
		pad = en.rt.BeforeCall(fn)
		codeBase = en.rt.CodeBase(fn)
		blockOffs = en.rt.BlockOffsets(fn)
	}

	frameTop := en.sp - mem.Addr(pad)
	frameBase := frameTop - mem.Addr(f.FrameSize)
	if frameBase < en.stackLow {
		en.fail(ErrStackOverflow)
	}
	savedSP := en.sp
	en.sp = frameBase

	mach := en.mach
	mach.Data8(frameTop - 8)
	mach.Retire(1)

	if en.rasLen == rasDepth {
		copy(en.ras[:], en.ras[1:])
		en.rasLen--
	}
	en.ras[en.rasLen] = callerPC
	en.rasLen++

	fr := en.frame(depth)
	mark := en.arena.mark()
	fr.fn = fn
	fr.lf = lf
	fr.regs = en.arena.alloc(lf.numRegs)
	if caller != nil {
		cregs := caller.regs
		for i, a := range argRegs {
			fr.regs[i] = cregs[a]
		}
	}
	fr.stack = en.arena.alloc(lf.stackWords)
	fr.frameBase = frameBase
	fr.ep = en.epochFor(lf, codeBase, blockOffs)

	ret, exc := en.exec(fr, depth)
	if exc != nil {
		mach.Data8(frameTop - 8)
		mach.Stall(unwindCost)
		if en.rasLen > 0 {
			en.rasLen--
		}
		en.obsFlush()
		en.callStack = en.callStack[:len(en.callStack)-1]
		en.sp = savedSP
		en.arena.release(mark)
		return 0, exc
	}

	mach.Data8(frameTop - 8)
	mach.Retire(1)
	if n := en.rasLen; n > 0 && en.ras[n-1] == callerPC {
		en.rasLen = n - 1
	} else {
		mach.Stall(mach.Costs.Mispredict)
		if n > 0 {
			en.rasLen = n - 1
		}
	}
	if callerPC != 0 {
		// The walk engine re-queries CodeBase here; for the static layout
		// the address cannot have moved.
		cur := codeBase
		if !en.native {
			cur = en.rt.CodeBase(fn)
		}
		if !mem.Below4G(cur) {
			mach.Stall(mach.Costs.SlowJump)
		}
	}

	en.obsFlush()
	en.callStack = en.callStack[:len(en.callStack)-1]
	en.sp = savedSP
	en.arena.release(mark)
	return ret, nil
}

// stopCheck is the slow path behind exec's single per-block stop
// comparison. stopAt is the earliest step at which either the budget check
// or the interrupt poll could fire, so folding both into one compare
// changes no behaviour: when the compare trips, this replays the exact
// walk-engine conditions and re-arms stopAt for the next trigger.
func (en *cvm) stopCheck() {
	if en.steps > en.maxSteps {
		en.fail(&StepBudgetError{Steps: en.steps, Budget: en.maxSteps})
	}
	if en.interrupt != nil && en.steps >= en.nextPoll {
		en.nextPoll = en.steps + interruptStride
		if err := en.interrupt(); err != nil {
			en.fail(err)
		}
	}
	en.rearmStop()
}

// rearmStop recomputes stopAt as the earliest step count that requires the
// slow path: one past the budget (steps > maxSteps fails), or the next
// interrupt poll, whichever comes first.
func (en *cvm) rearmStop() {
	s := en.maxSteps + 1
	if s == 0 { // maxSteps == MaxUint64: the budget can never trip
		s = en.maxSteps
	}
	if en.interrupt != nil && en.nextPoll < s {
		s = en.nextPoll
	}
	en.stopAt = s
}

// exec drives one activation through its lowered blocks. Each iteration
// mirrors one of walk exec()'s block rounds: fetch, tick, budget, poll,
// retire, straight-line ops, control segments, attribution flushes,
// terminator.
func (en *cvm) exec(fr *cframe, depth int) (uint64, *uint64) {
	lf := fr.lf
	mach := en.mach
	bi := 0
	for {
		if en.profile != nil {
			fr.blockStart = mach.Cycles
		}
		b := &lf.blocks[bi]
		eb := &fr.ep.blocks[bi]
		if eb.tlbGen == mach.TLB.Gen && eb.l1iGen == mach.L1I.Gen {
			// No tag in either cache has moved since this block last
			// verified as all-MRU-resident: same transitions, bulk-charged.
			n := uint64(eb.fetchEnd - eb.fetchOff)
			mach.TLB.Hits += n
			mach.L1I.Hits += n
		} else {
			lines := fr.ep.lines[eb.fetchOff:eb.fetchEnd]
			if mach.FetchSteady(lines) {
				eb.tlbGen, eb.l1iGen = mach.TLB.Gen, mach.L1I.Gen
			} else {
				mach.FetchPre(lines)
			}
		}
		if !en.native {
			en.rt.Tick(en.tickStack)
		}

		en.steps += b.live + 1
		if en.steps >= en.stopAt {
			en.stopCheck()
		}
		mach.Retire(b.live)

		jumped := false
		if b.plain != nil {
			// Single straight-line segment (the common block shape): run the
			// ops without the segment scaffolding or the control switch.
			en.runOps(fr, b.plain)
		} else {
			for si := range b.segs {
				sg := &b.segs[si]
				en.runOps(fr, sg.ops)
				switch sg.kind {
				case segPlain:
				case segThrow:
					v := fr.regs[sg.throw]
					if en.rec != nil {
						en.rec.record(en.steps, EvThrow, 0, 0, v)
					}
					return 0, &v
				case segCall:
					lc := &sg.call
					if en.rec != nil {
						en.rec.record(en.steps, EvCall, uint64(lc.callee), 0, 0)
					}
					callPC := eb.pc + lc.pcOff
					if !en.native {
						if slot, ok := en.rt.RelocCall(fr.fn, lc.callee); ok {
							mach.Data8(slot)
							mach.Retire(1)
							mach.IndirectBranch(callPC, en.rt.CodeBase(lc.callee))
						}
					}
					if en.profile != nil {
						en.profile[fr.fn] += mach.Cycles - fr.blockStart
					}
					en.obsFlush()
					v, exc := en.call(lc.callee, fr, lc.args, callPC, depth+1)
					if en.profile != nil {
						fr.blockStart = mach.Cycles
					}
					if exc != nil {
						if lc.handler >= 0 {
							if lc.dst >= 0 {
								fr.regs[lc.dst] = *exc
							}
							bi = int(lc.handler)
							jumped = true
						} else {
							return 0, exc
						}
					} else if lc.dst >= 0 {
						fr.regs[lc.dst] = v
					}
				}
				if jumped {
					break
				}
			}
		}

		if en.profile != nil {
			en.profile[fr.fn] += mach.Cycles - fr.blockStart
		}
		if en.obs != nil {
			en.obsFlush()
		}
		if jumped {
			continue
		}
		t := &b.term
		switch t.kind {
		case ir.TermJmp:
			bi = int(t.then)
		case ir.TermBr:
			var taken bool
			if t.fused != ir.OpNop {
				// Compare+branch superinstruction: evaluate the folded
				// comparison here. Register writes are invisible to the
				// machine and the recorder, and the compares charge no
				// machine cost, so deferring past the block's obsFlush is
				// observation-equivalent to the walk engine's in-block
				// evaluation.
				r := fr.regs
				var c uint64
				switch t.fused {
				case ir.OpCmpEQ:
					c = b2u(int64(r[t.cmpA]) == int64(r[t.cmpB]))
				case ir.OpCmpLT:
					c = b2u(int64(r[t.cmpA]) < int64(r[t.cmpB]))
				case ir.OpCmpLE:
					c = b2u(int64(r[t.cmpA]) <= int64(r[t.cmpB]))
				case ir.OpFCmpLT:
					c = b2u(f2(r[t.cmpA]) < f2(r[t.cmpB]))
				}
				r[t.cmpDst] = c
				taken = c != 0
			} else {
				taken = fr.regs[t.cond] != 0
			}
			// CondBranch, open-coded so the predictor update inlines into
			// the dispatch loop (the wrapper is over the inline budget).
			if mach.BP.Conditional(eb.termPC, taken) {
				mach.Cycles += mach.Costs.Mispredict
			}
			mach.Retire(1)
			if taken {
				bi = int(t.then)
			} else {
				bi = int(t.els)
			}
		case ir.TermRet:
			mach.Retire(1)
			if t.val < 0 {
				return 0, nil
			}
			return fr.regs[t.val], nil
		default:
			en.failf("%s: unterminated block %d", lf.f.Name, bi)
		}
	}
}

// alloc mirrors the walk engine's alloc exactly (same trap order, same
// recorder event, same handle recycling).
func (en *cvm) alloc(size uint64) uint64 {
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7
	addr, err := en.rt.Alloc(size)
	if err != nil {
		en.runtimeErr(err)
	}
	var handle int
	if n := len(en.freeObj); n > 0 {
		handle = en.freeObj[n-1]
		en.freeObj = en.freeObj[:n-1]
		en.objects[handle] = heapObject{addr: addr, data: make([]uint64, size/8), size: size, live: true}
	} else {
		handle = len(en.objects)
		en.objects = append(en.objects, heapObject{addr: addr, data: make([]uint64, size/8), size: size, live: true})
	}
	if handle >= 1<<30 {
		en.trap(trap.OutOfMemory, "too many heap objects")
	}
	if en.rec != nil {
		en.rec.record(en.steps, EvAlloc, uint64(handle), 0, size)
	}
	return ptrTag | uint64(handle)<<ptrHandleSh
}

// free mirrors the walk engine's free exactly.
func (en *cvm) free(ptr uint64) {
	if !IsPointer(ptr) {
		en.trap(trap.InvalidFree, "free of non-pointer value %#x", ptr)
	}
	if ptr&ptrOffMask != 0 {
		en.trap(trap.InvalidFree, "free of interior pointer (offset %d)", ptr&ptrOffMask)
	}
	handle := int((ptr &^ ptrTag) >> ptrHandleSh)
	if handle >= len(en.objects) {
		en.trap(trap.InvalidFree, "free of invalid handle %d", handle)
	}
	if !en.objects[handle].live {
		en.trap(trap.DoubleFree, "double free (handle %d)", handle)
	}
	obj := &en.objects[handle]
	if err := en.rt.Free(obj.addr); err != nil {
		en.runtimeErr(err)
	}
	if en.rec != nil {
		en.rec.record(en.steps, EvFree, uint64(handle), 0, 0)
	}
	obj.live = false
	obj.data = nil
	en.freeObj = append(en.freeObj, handle)
}

// runOps executes one straight-line run of lowered instructions. Each case
// mirrors the walk engine's switch arm for the same IR op — identical
// machine charges in the same order, identical recorder events, identical
// trap kinds and messages. After the primary op, a fused secondary in op2
// (always a register ALU op or a store; see fuseOps) executes from the
// d2/a2/b2 operand set, preserving original program order exactly.
// fastData8 is machine.Data8's MRU-resident fast path, open-coded from the
// MRUView geometry so it inlines into the dispatch loop (the cross-package
// Data8 call cannot). For a non-straddling 8-byte access whose line sits in
// the MRU way of both the TLB and the L1D, the access's entire effect is
// one hit-counter increment on each — charged here. Any other outcome
// returns false having changed nothing, and the caller takes mach.Data8.
func (en *cvm) fastData8(a mem.Addr) bool {
	if uint64(a)&en.lineMask > en.lineMask-7 {
		return false
	}
	tl := uint64(a) >> en.tlbShift
	dl := uint64(a) >> en.l1dShift
	if en.tlbTags[(tl&en.tlbMask)*en.tlbWays] == tl|1<<63 &&
		en.l1dTags[(dl&en.l1dMask)*en.l1dWays] == dl|1<<63 {
		en.mach.TLB.Hits++
		en.mach.L1D.Hits++
		return true
	}
	return false
}

func (en *cvm) runOps(fr *cframe, code []cinstr) {
	mach := en.mach
	r := fr.regs
	for i := range code {
		in := &code[i]
		switch in.op {
		case copConstI:
			r[in.d] = in.x
		case copMov:
			r[in.d] = r[in.a]
		case copAdd:
			r[in.d] = uint64(int64(r[in.a]) + int64(r[in.b]))
		case copSub:
			r[in.d] = uint64(int64(r[in.a]) - int64(r[in.b]))
		case copMul:
			mach.Stall(2)
			r[in.d] = uint64(int64(r[in.a]) * int64(r[in.b]))
		case copDiv:
			mach.Stall(20)
			r[in.d] = uint64(safeDiv(int64(r[in.a]), int64(r[in.b])))
		case copRem:
			mach.Stall(20)
			r[in.d] = uint64(safeRem(int64(r[in.a]), int64(r[in.b])))
		case copAnd:
			r[in.d] = r[in.a] & r[in.b]
		case copOr:
			r[in.d] = r[in.a] | r[in.b]
		case copXor:
			r[in.d] = r[in.a] ^ r[in.b]
		case copShl:
			r[in.d] = r[in.a] << (r[in.b] & 63)
		case copShr:
			r[in.d] = r[in.a] >> (r[in.b] & 63)
		case copFAdd:
			r[in.d] = fbits(f2(r[in.a]) + f2(r[in.b]))
		case copFSub:
			r[in.d] = fbits(f2(r[in.a]) - f2(r[in.b]))
		case copFMul:
			mach.Stall(2)
			r[in.d] = fbits(f2(r[in.a]) * f2(r[in.b]))
		case copFDiv:
			mach.Stall(12)
			r[in.d] = fbits(safeFDiv(f2(r[in.a]), f2(r[in.b])))
		case copCmpEQ:
			r[in.d] = b2u(int64(r[in.a]) == int64(r[in.b]))
		case copCmpLT:
			r[in.d] = b2u(int64(r[in.a]) < int64(r[in.b]))
		case copCmpLE:
			r[in.d] = b2u(int64(r[in.a]) <= int64(r[in.b]))
		case copFCmpLT:
			r[in.d] = b2u(f2(r[in.a]) < f2(r[in.b]))
		case copI2F:
			mach.Stall(3)
			r[in.d] = fbits(float64(int64(r[in.a])))
		case copF2I:
			mach.Stall(3)
			r[in.d] = uint64(safeF2I(f2(r[in.a])))

		case copLoadG, copLoadGF:
			g := int(in.a)
			addr := en.globalAddr(fr, g) + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op == copLoadGF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d] = en.globals[g][in.x>>3]
		case copStoreG, copStoreGF:
			g := int(in.a)
			addr := en.globalAddr(fr, g) + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op == copStoreGF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.b]
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreGlobal, uint64(g), in.x, v)
			}
			en.globals[g][in.x>>3] = v
		case copLoadGD, copLoadGFD, copStoreGD, copStoreGFD:
			g := int(in.b2)
			byteOff := in.imm + int64(r[in.a])*8
			ubo := uint64(byteOff)
			if ubo >= uint64(in.x)*8 || ubo&7 != 0 {
				en.trap(trap.OutOfBounds, "global %s access at byte %d outside %d bytes",
					en.m.Globals[g].Name, byteOff, int64(in.x)*8)
			}
			w := ubo >> 3
			addr := en.globalAddr(fr, g) + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if (in.op == copLoadGFD || in.op == copStoreGFD) && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			if in.op == copStoreGD || in.op == copStoreGFD {
				v := r[in.b]
				if en.rec != nil {
					en.rec.record(en.steps, EvStoreGlobal, uint64(g), uint64(byteOff), v)
				}
				en.globals[g][w] = v
			} else {
				r[in.d] = en.globals[g][w]
			}

		case copLoadS:
			addr := fr.frameBase + mem.Addr(in.x)
			if !en.fastData8(addr) {
				if !en.fastData8(addr) {
					mach.Data8(addr)
				}
			}
			r[in.d] = fr.stack[in.x>>3]
		case copLoadSF:
			addr := fr.frameBase + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d] = fr.stack[in.x>>3]
		case copStoreS, copStoreSF:
			addr := fr.frameBase + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op == copStoreSF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.b]
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreStack,
					uint64(fr.fn)<<32|uint64(in.a), uint64(in.imm), v)
			}
			fr.stack[in.x>>3] = v
		case copLoadSD, copLoadSFD, copStoreSD, copStoreSFD:
			lfp := fr.lf
			slotOff, slotSize := lfp.pool[in.x], lfp.pool[in.x+1]
			byteOff := in.imm + int64(r[in.a])*8
			ubo := uint64(byteOff)
			if ubo >= slotSize || ubo&7 != 0 {
				slot := lfp.f.Slots[in.b2]
				en.trap(trap.OutOfBounds, "%s: stack slot %s access at byte %d outside %d bytes",
					lfp.f.Name, slot.Name, byteOff, slotSize)
			}
			addr := fr.frameBase + mem.Addr(slotOff) + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if (in.op == copLoadSFD || in.op == copStoreSFD) && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			w := (slotOff + ubo) >> 3
			if in.op == copStoreSD || in.op == copStoreSFD {
				v := r[in.b]
				if en.rec != nil {
					en.rec.record(en.steps, EvStoreStack,
						uint64(fr.fn)<<32|uint64(in.b2), uint64(byteOff), v)
				}
				fr.stack[w] = v
			} else {
				r[in.d] = fr.stack[w]
			}

		case copLoadH, copLoadHF:
			ptr := r[in.a]
			if ptr&ptrTag == 0 {
				en.trap(trap.InvalidPointer, "heap access through non-pointer value %#x", ptr)
			}
			var idx int64
			if in.b >= 0 {
				idx = int64(r[in.b])
			}
			handle := int((ptr &^ ptrTag) >> ptrHandleSh)
			byteOff := int64(ptr&ptrOffMask) + in.imm + idx*8
			if handle >= len(en.objects) {
				en.trap(trap.InvalidPointer, "heap access through invalid handle %d", handle)
			}
			obj := &en.objects[handle]
			if !obj.live {
				en.trap(trap.UseAfterFree, "heap use after free (handle %d)", handle)
			}
			// One unsigned compare covers the negative-offset case (it wraps
			// past any object size) and &7 is %8 for the in-bounds range.
			ubo := uint64(byteOff)
			if ubo >= obj.size || ubo&7 != 0 {
				en.trap(trap.OutOfBounds, "heap access at byte %d outside object of %d bytes", byteOff, obj.size)
			}
			w := ubo >> 3
			addr := obj.addr + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op == copLoadHF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d] = obj.data[w]
		case copStoreH, copStoreHF:
			ptr := r[in.a]
			if ptr&ptrTag == 0 {
				en.trap(trap.InvalidPointer, "heap access through non-pointer value %#x", ptr)
			}
			var idx int64
			if in.b >= 0 {
				idx = int64(r[in.b])
			}
			handle := int((ptr &^ ptrTag) >> ptrHandleSh)
			byteOff := int64(ptr&ptrOffMask) + in.imm + idx*8
			if handle >= len(en.objects) {
				en.trap(trap.InvalidPointer, "heap access through invalid handle %d", handle)
			}
			obj := &en.objects[handle]
			if !obj.live {
				en.trap(trap.UseAfterFree, "heap use after free (handle %d)", handle)
			}
			// One unsigned compare covers the negative-offset case (it wraps
			// past any object size) and &7 is %8 for the in-bounds range.
			ubo := uint64(byteOff)
			if ubo >= obj.size || ubo&7 != 0 {
				en.trap(trap.OutOfBounds, "heap access at byte %d outside object of %d bytes", byteOff, obj.size)
			}
			w := ubo >> 3
			addr := obj.addr + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op == copStoreHF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.d] // the value register rides in Dst for heap stores
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreHeap, uint64(handle), uint64(byteOff), v)
			}
			obj.data[w] = v

		case copAlloc:
			r[in.d] = en.alloc(in.x)
		case copFree:
			en.free(r[in.a])
		case copSink:
			v := r[in.a]
			if liveBaseVal(en.objects, v) {
				en.trap(trap.InvalidPointer,
					"%s sinks a heap pointer; output would be layout-dependent", fr.lf.f.Name)
			}
			if en.rec != nil {
				en.rec.observe(en.steps, EvSink, 0, v)
			}
			en.output = en.output*1099511628211 + v
		case copSinkF:
			v := r[in.a]
			if en.rec != nil {
				en.rec.observe(en.steps, EvSink, 0, v)
			}
			en.output = en.output*1099511628211 + v
		case copSlow:
			fr.lf.slow[in.x](en, fr)
		default:
			en.failf("compiled: bad opcode %d", in.op)
		}

		if in.op2 == copNone {
			continue
		}
		// Fused secondary: a register ALU op or store from the d2/a2/b2
		// operand set, executed right where the unfused op would have run.
		switch in.op2 {
		case copConstI:
			r[in.d2] = in.x
		case copMov:
			r[in.d2] = r[in.a2]
		case copAdd:
			r[in.d2] = uint64(int64(r[in.a2]) + int64(r[in.b2]))
		case copSub:
			r[in.d2] = uint64(int64(r[in.a2]) - int64(r[in.b2]))
		case copMul:
			mach.Stall(2)
			r[in.d2] = uint64(int64(r[in.a2]) * int64(r[in.b2]))
		case copDiv:
			mach.Stall(20)
			r[in.d2] = uint64(safeDiv(int64(r[in.a2]), int64(r[in.b2])))
		case copRem:
			mach.Stall(20)
			r[in.d2] = uint64(safeRem(int64(r[in.a2]), int64(r[in.b2])))
		case copAnd:
			r[in.d2] = r[in.a2] & r[in.b2]
		case copOr:
			r[in.d2] = r[in.a2] | r[in.b2]
		case copXor:
			r[in.d2] = r[in.a2] ^ r[in.b2]
		case copShl:
			r[in.d2] = r[in.a2] << (r[in.b2] & 63)
		case copShr:
			r[in.d2] = r[in.a2] >> (r[in.b2] & 63)
		case copFAdd:
			r[in.d2] = fbits(f2(r[in.a2]) + f2(r[in.b2]))
		case copFSub:
			r[in.d2] = fbits(f2(r[in.a2]) - f2(r[in.b2]))
		case copFMul:
			mach.Stall(2)
			r[in.d2] = fbits(f2(r[in.a2]) * f2(r[in.b2]))
		case copFDiv:
			mach.Stall(12)
			r[in.d2] = fbits(safeFDiv(f2(r[in.a2]), f2(r[in.b2])))
		case copCmpEQ:
			r[in.d2] = b2u(int64(r[in.a2]) == int64(r[in.b2]))
		case copCmpLT:
			r[in.d2] = b2u(int64(r[in.a2]) < int64(r[in.b2]))
		case copCmpLE:
			r[in.d2] = b2u(int64(r[in.a2]) <= int64(r[in.b2]))
		case copFCmpLT:
			r[in.d2] = b2u(f2(r[in.a2]) < f2(r[in.b2]))
		case copI2F:
			mach.Stall(3)
			r[in.d2] = fbits(float64(int64(r[in.a2])))
		case copF2I:
			mach.Stall(3)
			r[in.d2] = uint64(safeF2I(f2(r[in.a2])))

		case copLoadS, copLoadSF:
			addr := fr.frameBase + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copLoadSF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d2] = fr.stack[in.x>>3]
		case copLoadG, copLoadGF:
			g := int(in.a2)
			addr := en.globalAddr(fr, g) + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copLoadGF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d2] = en.globals[g][in.x>>3]
		case copLoadH, copLoadHF:
			ptr := r[in.a2]
			if ptr&ptrTag == 0 {
				en.trap(trap.InvalidPointer, "heap access through non-pointer value %#x", ptr)
			}
			var idx int64
			if in.b2 >= 0 {
				idx = int64(r[in.b2])
			}
			handle := int((ptr &^ ptrTag) >> ptrHandleSh)
			byteOff := int64(ptr&ptrOffMask) + in.imm + idx*8
			if handle >= len(en.objects) {
				en.trap(trap.InvalidPointer, "heap access through invalid handle %d", handle)
			}
			obj := &en.objects[handle]
			if !obj.live {
				en.trap(trap.UseAfterFree, "heap use after free (handle %d)", handle)
			}
			ubo := uint64(byteOff)
			if ubo >= obj.size || ubo&7 != 0 {
				en.trap(trap.OutOfBounds, "heap access at byte %d outside object of %d bytes", byteOff, obj.size)
			}
			addr := obj.addr + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copLoadHF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			r[in.d2] = obj.data[ubo>>3]
		case copSink:
			v := r[in.a2]
			if liveBaseVal(en.objects, v) {
				en.trap(trap.InvalidPointer,
					"%s sinks a heap pointer; output would be layout-dependent", fr.lf.f.Name)
			}
			if en.rec != nil {
				en.rec.observe(en.steps, EvSink, 0, v)
			}
			en.output = en.output*1099511628211 + v
		case copSinkF:
			v := r[in.a2]
			if en.rec != nil {
				en.rec.observe(en.steps, EvSink, 0, v)
			}
			en.output = en.output*1099511628211 + v
		case copFree:
			en.free(r[in.a2])
		case copStoreS, copStoreSF:
			addr := fr.frameBase + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copStoreSF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.d2]
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreStack,
					uint64(fr.fn)<<32|uint64(in.a2), uint64(in.imm), v)
			}
			fr.stack[in.x>>3] = v
		case copStoreG, copStoreGF:
			g := int(in.a2)
			addr := en.globalAddr(fr, g) + mem.Addr(in.x)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copStoreGF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.d2]
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreGlobal, uint64(g), in.x, v)
			}
			en.globals[g][in.x>>3] = v
		case copStoreH, copStoreHF:
			ptr := r[in.a2]
			if ptr&ptrTag == 0 {
				en.trap(trap.InvalidPointer, "heap access through non-pointer value %#x", ptr)
			}
			var idx int64
			if in.b2 >= 0 {
				idx = int64(r[in.b2])
			}
			handle := int((ptr &^ ptrTag) >> ptrHandleSh)
			byteOff := int64(ptr&ptrOffMask) + in.imm + idx*8
			if handle >= len(en.objects) {
				en.trap(trap.InvalidPointer, "heap access through invalid handle %d", handle)
			}
			obj := &en.objects[handle]
			if !obj.live {
				en.trap(trap.UseAfterFree, "heap use after free (handle %d)", handle)
			}
			// One unsigned compare covers the negative-offset case (it wraps
			// past any object size) and &7 is %8 for the in-bounds range.
			ubo := uint64(byteOff)
			if ubo >= obj.size || ubo&7 != 0 {
				en.trap(trap.OutOfBounds, "heap access at byte %d outside object of %d bytes", byteOff, obj.size)
			}
			w := ubo >> 3
			addr := obj.addr + mem.Addr(byteOff)
			if !en.fastData8(addr) {
				mach.Data8(addr)
			}
			if in.op2 == copStoreHF && uint64(addr)%16 != 0 {
				mach.Stall(mach.Costs.UnalignedFP)
			}
			v := r[in.d2]
			if en.rec != nil {
				en.rec.record(en.steps, EvStoreHeap, uint64(handle), uint64(byteOff), v)
			}
			obj.data[w] = v
		}
	}
}
