package experiment

import (
	"context"
	"fmt"
)

// SemanticsGeneration versions the meaning of a cell's samples. A cell key
// names a configuration; this constant names what the simulator does with
// it. Bump it whenever a change alters the samples a fixed configuration
// produces (machine-model timing, noise draw order, allocator placement,
// compiler lowering that shifts retired-instruction streams) so long-lived
// result stores — which, unlike checkpoints, outlive the build that wrote
// them — treat old results as stale instead of serving them as current.
// Checkpoint directories are per-campaign scratch and deliberately do not
// embed it.
const SemanticsGeneration = 1

// CellKey fingerprints one experimental cell: every Config field that
// influences the samples, plus the run range. Two cells with equal keys
// collect identical results (same-seed determinism), which is what lets a
// checkpoint — or a content-addressed result store — substitute stored
// results for a re-run.
//
// This is the single definition of the fingerprint: checkpoint keys use it
// verbatim (Compiled.cellKey delegates here, pinned by a drift test), and
// store keys extend it with the engine tag and SemanticsGeneration (see
// internal/store.KeyFor). The format is a stable "|"-separated record whose
// first field is the benchmark name.
//
// A zero Scale is normalized to 1.0, matching CompileBench, so callers that
// fingerprint a Config without compiling it (the campaign coordinator) get
// the same key as the runner.
func CellKey(benchName string, cfg Config, runs int, seedBase uint64) string {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	stab := "native"
	if cfg.Stabilizer != nil {
		stab = fmt.Sprintf("stab{%+v}", *cfg.Stabilizer)
	}
	key := fmt.Sprintf("%s|scale=%g|level=%s|%s|link=%v|env=%d|noise=%g|maxsteps=%d|profile=%v|runs=%d|seedbase=%d",
		benchName, cfg.Scale, cfg.Level, stab,
		cfg.RandomLinkOrder, cfg.EnvSize, cfg.Noise,
		cfg.MaxSteps, cfg.Profile, runs, seedBase)
	// Throughput cells carry nondeterministic host times, so they never
	// share a key with golden cells (the suffix is absent for those, keeping
	// existing checkpoints valid). The engine is deliberately absent: both
	// engines collect identical samples.
	if cfg.Throughput {
		key += "|throughput"
	}
	return key
}

// A CellSource serves completed cell results by key. *Checkpoint implements
// it; so does the content-addressed result store's adapter
// (internal/store). Lookup returns nil on a miss — a miss is never an
// error, because re-collection is deterministic. Store persists a completed
// cell; failures are reported but non-fatal (the cell simply re-runs next
// time). Implementations must be safe for concurrent use by pool workers.
type CellSource interface {
	Lookup(key string, runs int, seedBase uint64) []RunResult
	Store(ctx context.Context, key string, runs int, seedBase uint64, results []RunResult) error
}

type cellStoreKeyType struct{}
type storeOnlyKeyType struct{}

var (
	cellStoreKey cellStoreKeyType
	storeOnlyKey storeOnlyKeyType
)

// WithCellStore returns a context carrying a shared result store; every
// Collect under it consults the store before computing (store-first
// dedupe) and flushes freshly computed cells back. The store is consulted
// before any checkpoint on the context: the store is the cross-campaign
// source of truth, the checkpoint a per-campaign scratch area. A checkpoint
// hit is also written through to the store, so resumed local campaigns
// populate the farm.
func WithCellStore(ctx context.Context, src CellSource) context.Context {
	return context.WithValue(ctx, cellStoreKey, src)
}

// CellStoreFrom returns the cell store carried by ctx, or nil.
func CellStoreFrom(ctx context.Context) CellSource {
	src, _ := ctx.Value(cellStoreKey).(CellSource)
	return src
}

// WithStoreOnly marks the context as serve-from-store-only: a Collect whose
// cell is not in the carried store fails with a *StoreMissError instead of
// computing. This is how an artifact is assembled purely from stored
// results — `szgate compare -store` and the farm coordinator's merged
// artifact both use it — and why that assembly is byte-identical to a
// compute run: it is the same collection code path with the compute branch
// forbidden.
func WithStoreOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, storeOnlyKey, true)
}

// StoreOnly reports whether ctx forbids computing cells.
func StoreOnly(ctx context.Context) bool {
	on, _ := ctx.Value(storeOnlyKey).(bool)
	return on
}

// StoreMissError reports a cell that store-only collection could not serve.
type StoreMissError struct {
	Label string // human-readable cell label
	Key   string // the cell fingerprint that missed
}

func (e *StoreMissError) Error() string {
	return fmt.Sprintf("experiment: cell %s not in result store (store-only collection computes nothing; run the cell or drop -store)", e.Label)
}
