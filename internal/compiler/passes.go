// Package compiler implements the optimization passes, pipelines, and static
// linker for the IR — the reproduction's stand-in for LLVM.
//
// The passes matter to the paper in two ways. First, they do real work:
// higher optimization levels retire fewer instructions. Second, they perturb
// layout: they change function sizes and therefore the addresses of
// everything downstream, which is the confound the paper shows can masquerade
// as (or mask) genuine optimization effects. The -O2 and -O3 pipelines here
// are organized after LLVM's: -O2 adds local CSE, loop-invariant code
// motion, and inlining; -O3 adds argument promotion (as interprocedural
// constant propagation), global CSE, scalar replacement of aggregates, dead
// global elimination, and more aggressive inlining (§6).
package compiler

import (
	"math"

	"repro/internal/ir"
)

// Pass is one IR-to-IR transformation.
type Pass interface {
	Name() string
	// Run transforms m in place.
	Run(m *ir.Module)
}

// ConstFold performs per-block constant propagation and folding, including
// the strength reductions (multiply/divide by powers of two to shifts) whose
// cycle savings make -O1 visibly faster than -O0.
type ConstFold struct{}

// Name implements Pass.
func (ConstFold) Name() string { return "constfold" }

// Run implements Pass.
func (ConstFold) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			foldBlock(f, b)
		}
	}
}

func foldBlock(f *ir.Function, b *ir.Block) {
	konst := map[ir.Reg]int64{} // registers known constant at this point
	val := func(r ir.Reg) (int64, bool) {
		v, ok := konst[r]
		return v, ok
	}
	out := make([]ir.Instr, 0, len(b.Instrs))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		out = append(out, *in)
		in = &out[len(out)-1]
		// Any write invalidates previous knowledge of the destination.
		invalidate := func() {
			if in.Dst != ir.NoReg && in.Op != ir.OpStoreH && in.Op != ir.OpStoreHF {
				delete(konst, in.Dst)
			}
		}
		switch in.Op {
		case ir.OpConstI, ir.OpConstF:
			konst[in.Dst] = in.Imm
			continue
		case ir.OpMov:
			invalidate()
			if v, ok := val(in.A); ok {
				in.Op, in.Imm, in.A = ir.OpConstI, v, ir.NoReg
				konst[in.Dst] = v
			}
			continue
		}
		a, aok := int64(0), false
		bv, bok := int64(0), false
		if in.A != ir.NoReg {
			a, aok = val(in.A)
		}
		if in.B != ir.NoReg {
			bv, bok = val(in.B)
		}
		if folded, ok := foldOp(in.Op, a, aok, bv, bok); ok {
			invalidate()
			in.Op, in.Imm, in.A, in.B = ir.OpConstI, folded, ir.NoReg, ir.NoReg
			konst[in.Dst] = folded
			continue
		}
		// Strength reduction: x * 2^k -> x << k, with the shift count
		// materialized in a fresh register so other users of B are
		// unaffected.
		if in.Op == ir.OpMul && bok && bv > 1 && bv&(bv-1) == 0 {
			k := int64(0)
			for v := bv; v > 1; v >>= 1 {
				k++
			}
			cnt := ir.Reg(f.NumRegs)
			f.NumRegs++
			// Insert the count before the (already appended) Mul.
			mul := out[len(out)-1]
			out[len(out)-1] = ir.Instr{Op: ir.OpConstI, Dst: cnt, A: ir.NoReg, B: ir.NoReg, Imm: k}
			mul.Op = ir.OpShl
			mul.B = cnt
			out = append(out, mul)
			konst[cnt] = k
			delete(konst, mul.Dst)
			continue
		}
		invalidate()
	}
	b.Instrs = out
}

// foldOp evaluates op over constant operands when possible.
func foldOp(op ir.Op, a int64, aok bool, b int64, bok bool) (int64, bool) {
	bin := aok && bok
	switch op {
	case ir.OpAdd:
		if bin {
			return a + b, true
		}
	case ir.OpSub:
		if bin {
			return a - b, true
		}
	case ir.OpMul:
		if bin {
			return a * b, true
		}
	case ir.OpDiv:
		if bin {
			if b == 0 {
				return 0, true
			}
			if a == math.MinInt64 && b == -1 {
				return a, true
			}
			return a / b, true
		}
	case ir.OpRem:
		if bin {
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return 0, true
			}
			return a % b, true
		}
	case ir.OpAnd:
		if bin {
			return a & b, true
		}
	case ir.OpOr:
		if bin {
			return a | b, true
		}
	case ir.OpXor:
		if bin {
			return a ^ b, true
		}
	case ir.OpShl:
		if bin {
			return int64(uint64(a) << (uint64(b) & 63)), true
		}
	case ir.OpShr:
		if bin {
			return int64(uint64(a) >> (uint64(b) & 63)), true
		}
	case ir.OpCmpEQ:
		if bin {
			return b2i(a == b), true
		}
	case ir.OpCmpLT:
		if bin {
			return b2i(a < b), true
		}
	case ir.OpCmpLE:
		if bin {
			return b2i(a <= b), true
		}
	case ir.OpFAdd:
		if bin {
			return ffold(a, b, func(x, y float64) float64 { return x + y }), true
		}
	case ir.OpFSub:
		if bin {
			return ffold(a, b, func(x, y float64) float64 { return x - y }), true
		}
	case ir.OpFMul:
		if bin {
			return ffold(a, b, func(x, y float64) float64 { return x * y }), true
		}
	case ir.OpFDiv:
		if bin {
			return ffold(a, b, func(x, y float64) float64 {
				if y == 0 {
					return 0
				}
				return x / y
			}), true
		}
	case ir.OpFCmpLT:
		if bin {
			return b2i(math.Float64frombits(uint64(a)) < math.Float64frombits(uint64(b))), true
		}
	case ir.OpI2F:
		if aok {
			return int64(math.Float64bits(float64(a))), true
		}
	case ir.OpF2I:
		if aok {
			f := math.Float64frombits(uint64(a))
			switch {
			case math.IsNaN(f):
				return 0, true
			case f >= math.MaxInt64:
				return math.MaxInt64, true
			case f <= math.MinInt64:
				return math.MinInt64, true
			}
			return int64(f), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func ffold(a, b int64, f func(x, y float64) float64) int64 {
	return int64(math.Float64bits(f(math.Float64frombits(uint64(a)), math.Float64frombits(uint64(b)))))
}

// DCE removes side-effect-free instructions whose results are never read,
// iterating to a fixpoint so chains of dead computations disappear.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		for dceOnce(f) {
		}
		compactBlocks(f)
	}
}

// dceOnce deletes dead instructions (turning them into nops) and reports
// whether anything changed.
func dceOnce(f *ir.Function) bool {
	used := make([]bool, f.NumRegs)
	mark := func(r ir.Reg) {
		if r != ir.NoReg {
			used[r] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpNop {
				continue
			}
			mark(in.A)
			mark(in.B)
			for _, a := range in.Args {
				mark(a)
			}
			if in.Op == ir.OpStoreH || in.Op == ir.OpStoreHF {
				mark(in.Dst) // value register rides in Dst for heap stores
			}
		}
		mark(b.Term.Cond)
		mark(b.Term.Val)
	}
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpNop || in.Op.HasSideEffects() {
				continue
			}
			if in.Dst == ir.NoReg || !used[in.Dst] {
				in.Op = ir.OpNop
				in.A, in.B, in.Args = ir.NoReg, ir.NoReg, nil
				changed = true
			}
		}
	}
	return changed
}

// compactBlocks physically removes nops left by other passes.
func compactBlocks(f *ir.Function) {
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != ir.OpNop {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
}

// LocalCSE performs per-block value numbering, replacing recomputations of
// pure expressions with copies.
type LocalCSE struct{}

// Name implements Pass.
func (LocalCSE) Name() string { return "cse" }

// Run implements Pass.
func (LocalCSE) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			cseBlock(f, b)
		}
	}
}

type vnKey struct {
	op   ir.Op
	a, b int32 // value numbers of operands (-1 if none)
	imm  int64
}

type vnEntry struct {
	reg ir.Reg
	vn  int32 // value number the register held when recorded
}

// cseBlock numbers values within a block. An available-expression entry is
// only reused if its holding register still carries the recorded value
// (non-SSA registers can be overwritten).
func cseBlock(f *ir.Function, b *ir.Block) {
	regVN := make([]int32, f.NumRegs)
	for i := range regVN {
		regVN[i] = -int32(i) - 1 // unique "unknown" number per register
	}
	next := int32(1)
	fresh := func() int32 { v := next; next++; return v }
	exprs := map[vnKey]vnEntry{}
	vnOf := func(r ir.Reg) int32 {
		if r == ir.NoReg {
			return -1
		}
		return regVN[r]
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op == ir.OpNop {
			continue
		}
		pure := isPure(in.Op)
		if in.Op == ir.OpMov {
			// Copies propagate value numbers.
			regVN[in.Dst] = regVN[in.A]
			continue
		}
		if !pure {
			// Side-effecting or memory instruction: its destination (if
			// any) gets a fresh number.
			if in.Dst != ir.NoReg && !in.Op.IsStore() {
				regVN[in.Dst] = fresh()
			}
			continue
		}
		key := vnKey{op: in.Op, a: vnOf(in.A), b: vnOf(in.B), imm: in.Imm}
		if e, ok := exprs[key]; ok && regVN[e.reg] == e.vn && e.reg != in.Dst {
			in.Op, in.A, in.B, in.Imm = ir.OpMov, e.reg, ir.NoReg, 0
			regVN[in.Dst] = e.vn
			continue
		}
		v := fresh()
		regVN[in.Dst] = v
		exprs[key] = vnEntry{reg: in.Dst, vn: v}
	}
}

// isPure reports whether an opcode computes a value with no side effects and
// no dependence on memory.
func isPure(op ir.Op) bool {
	switch op {
	case ir.OpConstI, ir.OpConstF, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
		ir.OpRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT,
		ir.OpI2F, ir.OpF2I:
		return true
	}
	return false
}
