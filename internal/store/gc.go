package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/interp"
)

// GCOptions configures a store garbage collection.
type GCOptions struct {
	// DryRun reports what would be evicted without deleting anything.
	DryRun bool
	// SampleKeys bounds GCReport.Evicted's key sample (default 10; negative
	// disables the sample).
	SampleKeys int
	// Force runs the pass even when the store's coordination lease is held.
	// By default GC refuses (see LeaseHeldError): deleting blocks under a
	// live coordinator races its journal writes and store re-probes.
	Force bool
}

// LeaseHeldError is returned by GC when the store's coordination lease is
// currently held and Force was not set.
type LeaseHeldError struct {
	Info LeaseInfo
}

func (e *LeaseHeldError) Error() string {
	return fmt.Sprintf("store: gc: coordination lease held by %s (epoch %d, expires in %s); a live coordinator may be writing — pass Force to override",
		e.Info.Holder, e.Info.Epoch, e.Info.ExpiresIn.Round(time.Millisecond))
}

// GCReport summarizes one GC pass. The counts are deterministic given the
// store contents (golden under the obs discipline).
type GCReport struct {
	// Scanned is every block file the pass examined.
	Scanned int `json:"scanned"`
	// Kept blocks carry the current semantics generation and a known
	// engine tag.
	Kept int `json:"kept"`
	// Evicted blocks were stale: wrong SemanticsGeneration or an engine
	// tag this build cannot attribute. With DryRun they are only counted.
	Evicted int `json:"evicted"`
	// Quarantined counts blocks that were unreadable or failed integrity
	// checks: moved to <dir>/quarantine/ on a real run (never silently
	// deleted — a corrupt block is evidence, not garbage), merely counted
	// on a dry run.
	Quarantined int `json:"quarantined"`
	// BytesReclaimed totals the evicted block file sizes.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// EvictedSample lists up to SampleKeys evicted keys for human output.
	EvictedSample []string `json:"evicted_sample,omitempty"`
	// DryRun echoes the option so reports are self-describing.
	DryRun bool `json:"dry_run"`
}

// staleKey reports whether a store key's suffix names a semantics
// generation other than the current one, or an engine tag this build does
// not know. Keys without the |engine=…|gen=… suffix predate the store's key
// schema entirely and are stale by definition.
func staleKey(key string) (stale bool, reason string) {
	genIdx := strings.LastIndex(key, "|gen=")
	if genIdx < 0 {
		return true, "no semantics generation in key"
	}
	gen, err := strconv.Atoi(key[genIdx+len("|gen="):])
	if err != nil {
		return true, "unparsable semantics generation"
	}
	if gen != experiment.SemanticsGeneration {
		return true, fmt.Sprintf("semantics generation %d, current %d", gen, experiment.SemanticsGeneration)
	}
	engIdx := strings.LastIndex(key[:genIdx], "|engine=")
	if engIdx < 0 {
		return true, "no engine tag in key"
	}
	if _, err := interp.ParseEngine(key[engIdx+len("|engine=") : genIdx]); err != nil {
		return true, "unknown engine tag"
	}
	return false, ""
}

// GC walks the block tree and evicts blocks whose key is stale — a
// SemanticsGeneration other than the running build's, or an engine tag the
// build no longer recognizes. Such blocks can never be served again (the
// current key schema cannot address them), so they are pure disk overhead
// in a long-lived farm store. Corrupt blocks found along the way are
// quarantined, mirroring the index rebuild. The index is rewritten after a
// non-dry run so it never names an evicted block.
func (s *Store) GC(opts GCOptions) (GCReport, error) {
	if opts.SampleKeys == 0 {
		opts.SampleKeys = 10
	}
	rep := GCReport{DryRun: opts.DryRun}
	if !opts.Force && !opts.DryRun {
		if info, err := s.Coordination().Observe(time.Now()); err == nil && info.Held {
			return rep, &LeaseHeldError{Info: info}
		}
	}
	root := filepath.Join(s.dir, "blocks")
	var evict, bad []string
	evictKey := map[string]string{} // path -> key
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		rep.Scanned++
		buf, err := os.ReadFile(path)
		if err != nil {
			s.warnf("gc: %s: %v (quarantining)", path, err)
			bad = append(bad, path)
			return nil
		}
		var f blockFile
		if jerr := json.Unmarshal(buf, &f); jerr != nil || f.Schema != BlockSchema {
			s.warnf("gc: %s: unreadable or foreign block (quarantining)", path)
			bad = append(bad, path)
			return nil
		}
		canon, cerr := canonicalPayload(f.Payload)
		var p blockPayload
		if cerr != nil || json.Unmarshal(canon, &p) != nil || hashHex(canon) != f.SHA256 {
			s.warnf("gc: %s: corrupt block (quarantining)", path)
			bad = append(bad, path)
			return nil
		}
		if stale, reason := staleKey(p.Key); stale {
			rep.Evicted++
			rep.BytesReclaimed += int64(len(buf))
			if opts.SampleKeys > 0 && len(rep.EvictedSample) < opts.SampleKeys {
				rep.EvictedSample = append(rep.EvictedSample, p.Key)
			}
			s.warnf("gc: evicting %s: %s", p.Key, reason)
			evict = append(evict, path)
			evictKey[path] = p.Key
			return nil
		}
		rep.Kept++
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("store: gc: %w", err)
	}
	if !opts.DryRun {
		for _, path := range bad {
			s.quarantine(path)
		}
		rep.Quarantined = len(bad)
		for _, path := range evict {
			if err := os.Remove(path); err != nil {
				return rep, fmt.Errorf("store: gc: evicting %s: %w", path, err)
			}
			s.mu.Lock()
			delete(s.index, evictKey[path])
			s.mu.Unlock()
		}
		if err := s.writeIndex(); err != nil {
			s.warnf("gc: rewriting index: %v (blocks are unaffected)", err)
		}
	} else {
		rep.Quarantined = len(bad)
	}
	s.metrics().Counter("store.gc.scanned").Add(uint64(rep.Scanned))
	s.metrics().Counter("store.gc.kept").Add(uint64(rep.Kept))
	s.metrics().Counter("store.gc.evicted").Add(uint64(rep.Evicted))
	s.metrics().Counter("store.gc.bytes_reclaimed").Add(uint64(rep.BytesReclaimed))
	return rep, nil
}
