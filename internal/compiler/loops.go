package compiler

import "repro/internal/ir"

// cfg holds per-function control-flow analysis shared by the loop passes.
type cfg struct {
	f     *ir.Function
	succs [][]int
	preds [][]int
	idom  []int // immediate dominator; entry's idom is itself
	order []int // reverse-postorder numbering
}

// buildCFG computes successors, predecessors, and dominators for f.
func buildCFG(f *ir.Function) *cfg {
	n := len(f.Blocks)
	c := &cfg{f: f, succs: make([][]int, n), preds: make([][]int, n), idom: make([]int, n)}
	for i, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.TermJmp:
			c.succs[i] = []int{b.Term.Then}
		case ir.TermBr:
			c.succs[i] = []int{b.Term.Then, b.Term.Else}
		}
		for _, s := range c.succs[i] {
			c.preds[s] = append(c.preds[s], i)
		}
	}
	c.computeOrder()
	c.computeDominators()
	return c
}

// computeOrder numbers reachable blocks in reverse postorder.
func (c *cfg) computeOrder() {
	n := len(c.f.Blocks)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range c.succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	c.order = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		c.order = append(c.order, post[i])
	}
}

// computeDominators runs the iterative algorithm of Cooper, Harvey, and
// Kennedy over the reverse postorder.
func (c *cfg) computeDominators() {
	n := len(c.f.Blocks)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range c.order {
		rpoNum[b] = i
	}
	for i := range c.idom {
		c.idom[i] = -1
	}
	c.idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = c.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = c.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.preds[b] {
				if c.idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
}

// dominates reports whether block a dominates block b.
func (c *cfg) dominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == 0 || c.idom[b] == -1 {
			return false
		}
		if c.idom[b] == b {
			return false
		}
		b = c.idom[b]
	}
}

// loop is a natural loop: a header plus its body blocks.
type loop struct {
	header int
	blocks map[int]bool
}

// naturalLoops finds the natural loop of every back edge, merging loops that
// share a header.
func (c *cfg) naturalLoops() []*loop {
	byHeader := map[int]*loop{}
	for _, u := range c.order {
		for _, h := range c.succs[u] {
			if !c.dominates(h, u) {
				continue // not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &loop{header: h, blocks: map[int]bool{h: true}}
				byHeader[h] = l
			}
			// Walk backwards from u collecting nodes that reach u without
			// passing through h.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.blocks[b] {
					continue
				}
				l.blocks[b] = true
				stack = append(stack, c.preds[b]...)
			}
		}
	}
	out := make([]*loop, 0, len(byHeader))
	for _, o := range c.order {
		if l, ok := byHeader[o]; ok {
			out = append(out, l)
		}
	}
	return out
}

// LICM hoists loop-invariant pure computations into a preheader. Because the
// IR is not SSA, an instruction is hoisted only when it is the sole
// definition of its destination inside the loop, its destination is not read
// inside the loop before it on any path (conservatively: only read in its
// own block after it), and its operands have no definitions inside the loop.
type LICM struct{}

// Name implements Pass.
func (LICM) Name() string { return "licm" }

// Run implements Pass.
func (LICM) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		licmFunc(f)
	}
}

func licmFunc(f *ir.Function) {
	// Hoisting inserts preheaders, which invalidates the CFG analysis, so
	// rebuild and retry until no loop yields further motion.
	for rounds := 0; rounds < 16; rounds++ {
		c := buildCFG(f)
		changed := false
		for _, l := range c.naturalLoops() {
			if hoistLoop(f, c, l) {
				changed = true
				break // CFG is stale after a preheader insertion
			}
		}
		if !changed {
			return
		}
	}
}

// sortedBlocks returns the loop's block indices in ascending order, keeping
// pass output deterministic (map iteration order must never influence
// generated code — generated code *is* layout).
func sortedBlocks(l *loop) []int {
	out := make([]int, 0, len(l.blocks))
	for b := range l.blocks {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// defsIn counts definitions of each register inside the loop.
func defsIn(f *ir.Function, l *loop) []int {
	defs := make([]int, f.NumRegs)
	for b := range l.blocks {
		for i := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[i]
			if in.Op == ir.OpNop {
				continue
			}
			if in.Dst != ir.NoReg && !in.Op.IsStore() {
				defs[in.Dst]++
			}
		}
	}
	return defs
}

func hoistLoop(f *ir.Function, c *cfg, l *loop) bool {
	defs := defsIn(f, l)
	blocks := sortedBlocks(l)

	// An instruction may move only once its operands are defined outside
	// the loop, so iterate to a fixpoint; the resulting hoisted sequence is
	// automatically in dependency order.
	var hoisted []ir.Instr
	for moved := true; moved; {
		moved = false
		for _, b := range blocks {
			blk := f.Blocks[b]
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op == ir.OpNop || !isPure(in.Op) || in.Dst == ir.NoReg {
					continue
				}
				if defs[in.Dst] != 1 {
					continue
				}
				if in.A != ir.NoReg && defs[in.A] != 0 {
					continue
				}
				if in.B != ir.NoReg && defs[in.B] != 0 {
					continue
				}
				if !readsConfined(f, l, b, i, in.Dst) {
					continue
				}
				hoisted = append(hoisted, *in)
				in.Op, in.A, in.B, in.Args = ir.OpNop, ir.NoReg, ir.NoReg, nil
				defs[in.Dst] = 0 // now defined outside the loop
				moved = true
			}
		}
	}
	if len(hoisted) == 0 {
		return false
	}

	// Build a preheader and retarget the non-back-edge predecessors of the
	// header to it.
	pre := len(f.Blocks)
	f.Blocks = append(f.Blocks, &ir.Block{
		Instrs: hoisted,
		Term:   ir.Terminator{Kind: ir.TermJmp, Then: l.header, Cond: ir.NoReg, Val: ir.NoReg},
	})
	for _, p := range c.preds[l.header] {
		if l.blocks[p] {
			continue // back edge stays on the header
		}
		t := &f.Blocks[p].Term
		if t.Kind == ir.TermJmp || t.Kind == ir.TermBr {
			if t.Then == l.header {
				t.Then = pre
			}
			if t.Kind == ir.TermBr && t.Else == l.header {
				t.Else = pre
			}
		}
	}
	if l.header == 0 {
		// The entry block cannot have a preheader spliced in front without
		// renumbering; loops produced by the builder never start at block
		// 0, but guard anyway by swapping the blocks.
		f.Blocks[0], f.Blocks[pre] = f.Blocks[pre], f.Blocks[0]
		remapTargets(f, map[int]int{0: pre, pre: 0})
	}
	return true
}

// readsConfined reports whether every read of reg in the whole function
// occurs inside the loop, in block b, strictly after instruction index i.
// (Reads outside the loop would observe the hoisted value even when the loop
// body never runs, so they disqualify hoisting; reads before the definition
// would observe the previous value.)
func readsConfined(f *ir.Function, l *loop, b, i int, reg ir.Reg) bool {
	reads := func(in *ir.Instr, r ir.Reg) bool {
		if in.A == r || in.B == r {
			return true
		}
		if in.Op == ir.OpStoreH || in.Op == ir.OpStoreHF {
			if in.Dst == r {
				return true
			}
		}
		for _, a := range in.Args {
			if a == r {
				return true
			}
		}
		return false
	}
	for bb, blk := range f.Blocks {
		for j := range blk.Instrs {
			in := &blk.Instrs[j]
			if in.Op == ir.OpNop {
				continue
			}
			if reads(in, reg) && !(bb == b && j > i) {
				return false
			}
		}
		if blk.Term.Cond == reg || blk.Term.Val == reg {
			if bb != b {
				return false
			}
		}
	}
	return true
}

// remapTargets rewrites all terminator targets through the given mapping.
func remapTargets(f *ir.Function, mapping map[int]int) {
	for _, b := range f.Blocks {
		if nb, ok := mapping[b.Term.Then]; ok {
			b.Term.Then = nb
		}
		if b.Term.Kind == ir.TermBr {
			if nb, ok := mapping[b.Term.Else]; ok {
				b.Term.Else = nb
			}
		}
	}
}

// GlobalCSE extends value numbering across blocks along the dominator tree.
// To stay sound without SSA, it only records expressions whose destination
// and operands each have a single definition in the whole function; such a
// value is available at every block the defining block dominates.
type GlobalCSE struct{}

// Name implements Pass.
func (GlobalCSE) Name() string { return "globalcse" }

// Run implements Pass.
func (GlobalCSE) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		globalCSEFunc(f)
	}
}

func globalCSEFunc(f *ir.Function) {
	defs := make([]int, f.NumRegs)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpNop && in.Dst != ir.NoReg && !in.Op.IsStore() {
				defs[in.Dst]++
			}
		}
	}
	single := func(r ir.Reg) bool { return r == ir.NoReg || defs[r] == 1 }

	c := buildCFG(f)
	type gKey struct {
		op   ir.Op
		a, b ir.Reg
		imm  int64
	}
	type gDef struct {
		reg   ir.Reg
		block int
	}
	avail := map[gKey][]gDef{}

	for _, bi := range c.order {
		blk := f.Blocks[bi]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.OpNop || !isPure(in.Op) || in.Dst == ir.NoReg {
				continue
			}
			if !single(in.Dst) || !single(in.A) || !single(in.B) {
				continue
			}
			key := gKey{op: in.Op, a: in.A, b: in.B, imm: in.Imm}
			replaced := false
			for _, d := range avail[key] {
				if d.reg != in.Dst && c.dominates(d.block, bi) {
					in.Op, in.A, in.B, in.Imm = ir.OpMov, d.reg, ir.NoReg, 0
					replaced = true
					break
				}
			}
			if !replaced {
				avail[key] = append(avail[key], gDef{reg: in.Dst, block: bi})
			}
		}
	}
}
