package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Farm trace headers. Every coordinator↔worker exchange carries the
// campaign's trace ID and the cell attempt's span ID so lease grant →
// run → complete → store Put is one causally linked trace, even when a
// failover moves the campaign to another coordinator. Trace IDs are
// random identity — non-golden by nature — while span IDs are
// deterministic functions of (campaign, cell, attempt), so a span names
// the same attempt no matter which process minted it.
const (
	HeaderTrace = "X-Sz-Trace"
	HeaderSpan  = "X-Sz-Span"
)

// TraceContext identifies one unit of farm work: the campaign's trace
// and the current cell attempt's span. The zero value means "no trace".
type TraceContext struct {
	TraceID string
	SpanID  string
}

// traceFallback seeds the counter-based fallback IDs minted if the
// system entropy source ever fails; IDs are correlation telemetry, not
// security material, so degrading to a counter beats failing a campaign.
var traceFallback atomic.Uint64

// NewTraceID mints a 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SpanID names one cell attempt deterministically: every process that
// refers to campaign c0001's astar attempt 2 derives the same
// "c0001/astar#2", which is what lets the timeline join coordinator
// events with worker span records without a handshake.
func SpanID(campaign, cell string, attempt int) string {
	return fmt.Sprintf("%s/%s#%d", campaign, cell, attempt)
}

// Valid reports whether the context carries a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// Inject stamps the trace headers onto h. A zero context stamps nothing.
func (tc TraceContext) Inject(h http.Header) {
	if tc.TraceID != "" {
		h.Set(HeaderTrace, tc.TraceID)
	}
	if tc.SpanID != "" {
		h.Set(HeaderSpan, tc.SpanID)
	}
}

// ExtractTrace reads the trace headers from h; absent headers yield the
// zero context.
func ExtractTrace(h http.Header) TraceContext {
	return TraceContext{
		TraceID: h.Get(HeaderTrace),
		SpanID:  h.Get(HeaderSpan),
	}
}

type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc; the farm client
// injects it into every outgoing request's headers.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx, or the
// zero context.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
