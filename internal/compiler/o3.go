package compiler

import "repro/internal/ir"

// SRA (scalar replacement of aggregates) promotes 8-byte stack slots that
// are only ever accessed whole (offset 0, no index register) into virtual
// registers, removing their memory traffic and shrinking frames.
type SRA struct{}

// Name implements Pass.
func (SRA) Name() string { return "sra" }

// Run implements Pass.
func (SRA) Run(m *ir.Module) {
	for _, f := range m.Funcs {
		sraFunc(f)
	}
	m.Finalize()
}

func sraFunc(f *ir.Function) {
	promotable := make([]bool, len(f.Slots))
	for si, s := range f.Slots {
		promotable[si] = s.Size == 8
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoadS, ir.OpStoreS, ir.OpLoadSF, ir.OpStoreSF:
				if in.Imm != 0 || in.A != ir.NoReg {
					promotable[in.Sym] = false
				}
			}
		}
	}
	any := false
	for _, p := range promotable {
		if p {
			any = true
		}
	}
	if !any {
		return
	}

	// One fresh register per promoted slot.
	slotReg := make([]ir.Reg, len(f.Slots))
	for si := range f.Slots {
		if promotable[si] {
			slotReg[si] = ir.Reg(f.NumRegs)
			f.NumRegs++
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoadS, ir.OpLoadSF:
				if promotable[in.Sym] {
					*in = ir.Instr{Op: ir.OpMov, Dst: in.Dst, A: slotReg[in.Sym], B: ir.NoReg}
				}
			case ir.OpStoreS, ir.OpStoreSF:
				if promotable[in.Sym] {
					*in = ir.Instr{Op: ir.OpMov, Dst: slotReg[in.Sym], A: in.B, B: ir.NoReg}
				}
			}
		}
	}

	// Remove the promoted slots and renumber the remainder.
	remap := make([]int32, len(f.Slots))
	var kept []ir.StackSlot
	for si, s := range f.Slots {
		if promotable[si] {
			remap[si] = -1
			continue
		}
		remap[si] = int32(len(kept))
		kept = append(kept, s)
	}
	f.Slots = kept
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoadS, ir.OpStoreS, ir.OpLoadSF, ir.OpStoreSF:
				in.Sym = remap[in.Sym]
			}
		}
	}
}

// IPConstProp is the reproduction's analogue of LLVM's argument promotion
// (§6): when every call site passes the same compile-time constant for a
// parameter, the constant is materialized at the callee's entry so later
// folding can specialize the body.
type IPConstProp struct{}

// Name implements Pass.
func (IPConstProp) Name() string { return "ipconstprop" }

// Run implements Pass.
func (IPConstProp) Run(m *ir.Module) {
	// For each function, the constant (if any) each parameter always
	// receives.
	type pval struct {
		known bool // some call seen
		same  bool
		v     int64
	}
	params := make([][]pval, len(m.Funcs))
	for fi, f := range m.Funcs {
		params[fi] = make([]pval, f.Params)
		for i := range params[fi] {
			params[fi][i].same = true
		}
	}

	for _, f := range m.Funcs {
		// Block-local constant tracking mirrors ConstFold.
		for _, b := range f.Blocks {
			konst := map[ir.Reg]int64{}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpConstI, ir.OpConstF:
					konst[in.Dst] = in.Imm
					continue
				case ir.OpCall:
					ps := params[in.Sym]
					for ai, a := range in.Args {
						v, ok := konst[a]
						p := &ps[ai]
						if !ok {
							p.same = false
						} else if !p.known {
							p.known, p.v = true, v
						} else if p.v != v {
							p.same = false
						}
					}
				}
				if in.Dst != ir.NoReg && !in.Op.IsStore() {
					delete(konst, in.Dst)
				}
			}
		}
	}

	entry := m.Entry()
	for fi, f := range m.Funcs {
		if fi == entry {
			continue
		}
		var pre []ir.Instr
		for pi, p := range params[fi] {
			if p.known && p.same {
				pre = append(pre, ir.Instr{Op: ir.OpConstI, Dst: ir.Reg(pi), A: ir.NoReg, B: ir.NoReg, Imm: p.v})
			}
		}
		if len(pre) > 0 {
			eb := f.Blocks[0]
			eb.Instrs = append(pre, eb.Instrs...)
		}
	}
}

// DeadGlobals removes globals that no instruction references and renumbers
// the survivors, shrinking (and shifting!) the data segment.
type DeadGlobals struct{}

// Name implements Pass.
func (DeadGlobals) Name() string { return "deadglobals" }

// Run implements Pass.
func (DeadGlobals) Run(m *ir.Module) {
	used := make([]bool, len(m.Globals))
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpLoadG, ir.OpStoreG, ir.OpLoadGF, ir.OpStoreGF:
					used[in.Sym] = true
				}
			}
		}
	}
	remap := make([]int32, len(m.Globals))
	var kept []ir.Global
	changed := false
	for gi, g := range m.Globals {
		if !used[gi] {
			remap[gi] = -1
			changed = true
			continue
		}
		remap[gi] = int32(len(kept))
		kept = append(kept, g)
	}
	if !changed {
		return
	}
	m.Globals = kept
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpLoadG, ir.OpStoreG, ir.OpLoadGF, ir.OpStoreGF:
					in.Sym = remap[in.Sym]
				}
			}
		}
	}
}
