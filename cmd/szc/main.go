// Command szc mirrors the paper's szc compiler driver (§3.1): it builds a
// benchmark from the suite at a chosen optimization level, optionally applies
// the STABILIZER compiler transformations (floating-point constant
// extraction and conversion outlining), links it, and reports the image.
//
// Usage:
//
//	szc -bench mcf [-O 2] [-stabilize] [-scale 1.0] [-dump] [-order shuffled -seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/spec"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	level := flag.Int("O", 2, "optimization level 0-3")
	stabilize := flag.Bool("stabilize", false, "apply STABILIZER compiler transformations")
	scale := flag.Float64("scale", 1.0, "workload scale")
	dump := flag.Bool("dump", false, "dump the compiled IR")
	order := flag.String("order", "default", "link order: default or shuffled")
	seed := flag.Uint64("seed", 1, "seed for -order shuffled")
	levels := flag.Bool("levels", false, "compare static code across -O0..-O3")
	flag.Parse()

	if *list {
		for _, b := range spec.Suite() {
			fmt.Printf("%-12s (%s)  %s\n", b.Name, b.Lang, b.Notes)
		}
		return
	}
	b, ok := spec.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "szc: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	optLevel, err := compiler.ParseLevel(*level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "szc: %v\n", err)
		os.Exit(2)
	}

	if *levels {
		compareLevels(b, *scale, *stabilize)
		return
	}

	src := b.Build(*scale)
	m, err := compiler.Compile(src, compiler.Options{
		Level:     optLevel,
		Stabilize: *stabilize,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "szc: %v\n", err)
		os.Exit(1)
	}

	ord := compiler.DefaultOrder(len(m.Funcs))
	if *order == "shuffled" {
		ord = compiler.RandomOrder(len(m.Funcs), rng.NewMarsaglia(*seed))
	}
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, ord, as)
	if err != nil {
		fmt.Fprintf(os.Stderr, "szc: link: %v\n", err)
		os.Exit(1)
	}

	var codeBytes uint64
	instrs := 0
	for _, f := range m.Funcs {
		codeBytes += f.Size
		for _, blk := range f.Blocks {
			instrs += len(blk.Instrs)
		}
	}
	fmt.Printf("module     %s (-O%d%s)\n", m.Name, *level, map[bool]string{true: ", stabilized", false: ""}[*stabilize])
	fmt.Printf("functions  %d\n", len(m.Funcs))
	fmt.Printf("globals    %d\n", len(m.Globals))
	fmt.Printf("static IR  %d instructions, %d bytes of code\n", instrs, codeBytes)
	fmt.Printf("text       %#x .. %#x\n", uint64(img.FuncAddrs[ord[0]]),
		uint64(img.FuncAddrs[ord[len(ord)-1]])+m.Funcs[ord[len(ord)-1]].Size)
	entry := m.Entry()
	fmt.Printf("entry      %s at %#x\n", m.Funcs[entry].Name, uint64(img.FuncAddrs[entry]))

	if *dump {
		fmt.Println()
		fmt.Print(m.String())
	}
}

// compareLevels prints the static footprint of every optimization level.
func compareLevels(b spec.Benchmark, scale float64, stabilize bool) {
	fmt.Printf("%-6s %10s %12s %10s %10s\n", "level", "functions", "instructions", "code (B)", "globals")
	for _, lvl := range compiler.Levels() {
		src := b.Build(scale)
		m, err := compiler.Compile(src, compiler.Options{
			Level:     lvl,
			Stabilize: stabilize,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "szc: -O%d: %v\n", lvl, err)
			os.Exit(1)
		}
		instrs := 0
		var code uint64
		for _, f := range m.Funcs {
			code += f.Size
			for _, blk := range f.Blocks {
				instrs += len(blk.Instrs)
			}
		}
		fmt.Printf("-O%-5d %10d %12d %10d %10d\n", lvl, len(m.Funcs), instrs, code, len(m.Globals))
	}
}
