package compiler_test

import (
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/ir"
)

// TestPassesIdempotent: running a cleanup pass twice must equal running it
// once — a standard compiler hygiene property that catches passes that keep
// "optimizing" their own output.
func TestPassesIdempotent(t *testing.T) {
	passes := []compiler.Pass{
		compiler.ConstFold{},
		compiler.DCE{},
		compiler.LocalCSE{},
		compiler.SRA{},
		compiler.DeadGlobals{},
		compiler.GlobalCSE{},
	}
	for _, p := range passes {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				m := ir.Generate(seed%200, ir.GenConfig{})
				p.Run(m)
				once := m.String()
				p.Run(m)
				return m.String() == once
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPassesPreserveValidity: every pass output must validate on random
// inputs (complement of the semantic fuzz test).
func TestPassesPreserveValidity(t *testing.T) {
	passes := []compiler.Pass{
		compiler.ConstFold{}, compiler.DCE{}, compiler.LocalCSE{},
		compiler.LICM{}, compiler.Inline{Threshold: 128, MaxGrowth: 4096},
		compiler.IPConstProp{}, compiler.GlobalCSE{}, compiler.SRA{},
		compiler.DeadGlobals{},
		compiler.FPConstToGlobal{}, compiler.OutlineConversions{},
	}
	for seed := uint64(300); seed < 320; seed++ {
		m := ir.Generate(seed, ir.GenConfig{})
		for _, p := range passes {
			p.Run(m)
			if err := m.Validate(); err != nil {
				t.Fatalf("seed %d: invalid after %s: %v", seed, p.Name(), err)
			}
		}
	}
}

// TestPipelineNeverGrowsDynamicWork: on random programs, -O2 must never
// retire more instructions than -O0 (passes may only remove or simplify
// dynamic work; code size may grow, instruction count must not).
func TestPipelineNeverGrowsDynamicWork(t *testing.T) {
	for seed := uint64(400); seed < 430; seed++ {
		src := ir.Generate(seed, ir.GenConfig{})
		o0, err := compiler.Compile(src, compiler.Options{Level: compiler.O0})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := compiler.Compile(src, compiler.Options{Level: compiler.O2})
		if err != nil {
			t.Fatal(err)
		}
		r0, err := fuzzRun(t, o0, compiler.DefaultOrder(len(o0.Funcs)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := fuzzRun(t, o2, compiler.DefaultOrder(len(o2.Funcs)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r2.Instructions > r0.Instructions {
			t.Errorf("seed %d: -O2 retired %d instructions, -O0 only %d",
				seed, r2.Instructions, r0.Instructions)
		}
	}
}
