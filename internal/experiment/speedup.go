package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

// SpeedupRow is one benchmark's pair of bars in Figure 7.
type SpeedupRow struct {
	Benchmark string
	// SpeedupO2 = time(-O1)/time(-O2); SpeedupO3 = time(-O2)/time(-O3).
	// Values above 1 mean the higher level helped.
	SpeedupO2, SpeedupO3 float64
	// Significance of each comparison: the t-test for benchmarks whose
	// stabilized times are normal, the Wilcoxon signed-rank test otherwise
	// (§6), at alpha = 0.05.
	SignificantO2, SignificantO3 bool
	PO2, PO3                     float64
	// NormalO1..O3 report the Shapiro-Wilk screening used to choose the
	// test.
	NormalO1, NormalO2, NormalO3 bool

	meansByLevel [3]float64 // O1, O2, O3
}

// SpeedupResult reproduces Figure 7 and feeds the §6.1 ANOVA.
type SpeedupResult struct {
	Rows []SpeedupRow
	Runs int

	// ANOVAO2 tests -O2 vs -O1 across all benchmarks; ANOVAO3 tests -O3 vs
	// -O2 (§6.1's two one-way within-subjects analyses).
	ANOVAO2, ANOVAO3 stats.ANOVAResult
	// TwoWayO2/TwoWayO3 are the full benchmark × treatment partitions with
	// replication — "the fraction due to differences between benchmarks,
	// the impact of optimizations, interactions between the independent
	// factors, and random variation between runs" (§6.1).
	TwoWayO2, TwoWayO3 stats.TwoWayANOVAResult
}

// SpeedupOptions configures the experiment.
type SpeedupOptions struct {
	Scale    float64
	Runs     int
	Seed     uint64
	Interval uint64
	Suite    []spec.Benchmark
}

func (o *SpeedupOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Interval == 0 {
		o.Interval = 25_000
	}
	if o.Suite == nil {
		o.Suite = spec.Suite()
	}
}

// Speedup runs every benchmark at -O1, -O2, and -O3 under full STABILIZER
// randomization and evaluates the optimization levels (Figure 7 and §6.1).
// The benchmark × level matrix executes as one flat grid of cells on the
// default pool; the statistics are assembled afterwards in suite order, so
// the result is identical to the sequential evaluation.
func Speedup(ctx context.Context, opts SpeedupOptions) (*SpeedupResult, error) {
	opts.defaults()
	levels := []compiler.OptLevel{compiler.O1, compiler.O2, compiler.O3}
	res := &SpeedupResult{Runs: opts.Runs}

	anovaO2 := make([][]float64, 0, len(opts.Suite))
	anovaO3 := make([][]float64, 0, len(opts.Suite))
	twoWayO2 := make([][][]float64, 0, len(opts.Suite))
	twoWayO3 := make([][][]float64, 0, len(opts.Suite))

	// Phase 1: collect every cell of the matrix in parallel.
	grid := make([][][]float64, len(opts.Suite))
	for bi := range grid {
		grid[bi] = make([][]float64, len(levels))
	}
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(opts.Suite)*len(levels), func(ctx context.Context, k int) error {
		bi, li := k/len(levels), k%len(levels)
		st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: opts.Interval}
		cc, err := CompileBench(opts.Suite[bi], Config{Scale: opts.Scale, Level: levels[li], Stabilizer: &st})
		if err != nil {
			return err
		}
		ss, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*100_000+uint64(li)*1000)
		if err != nil {
			return err
		}
		grid[bi][li] = ss.Seconds
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: the statistics, in suite order.
	for bi, b := range opts.Suite {
		samples := grid[bi]

		normal := [3]bool{}
		for li := range samples {
			normal[li] = stats.ShapiroWilk(samples[li]).P >= 0.05
		}
		// Choose the test per comparison: parametric when both sides are
		// normal, Wilcoxon otherwise (§6).
		test := func(a, b []float64, bothNormal bool) stats.TestResult {
			if bothNormal {
				return stats.WelchT(a, b)
			}
			return stats.WilcoxonSignedRankExact(a, b)
		}
		tO2 := test(samples[0], samples[1], normal[0] && normal[1])
		tO3 := test(samples[1], samples[2], normal[1] && normal[2])

		m1, m2, m3 := stats.Mean(samples[0]), stats.Mean(samples[1]), stats.Mean(samples[2])
		row := SpeedupRow{
			Benchmark:     b.Name,
			SpeedupO2:     m1 / m2,
			SpeedupO3:     m2 / m3,
			SignificantO2: tO2.Significant(0.05),
			SignificantO3: tO3.Significant(0.05),
			PO2:           tO2.P,
			PO3:           tO3.P,
			NormalO1:      normal[0],
			NormalO2:      normal[1],
			NormalO3:      normal[2],
			meansByLevel:  [3]float64{m1, m2, m3},
		}
		res.Rows = append(res.Rows, row)

		anovaO2 = append(anovaO2, []float64{m1, m2})
		anovaO3 = append(anovaO3, []float64{m2, m3})
		// Normalize each benchmark's replicates by its own -O1 mean so the
		// two-way partition is not swamped by absolute-scale differences
		// between benchmarks.
		norm := func(xs []float64, by float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = x / by
			}
			return out
		}
		twoWayO2 = append(twoWayO2, [][]float64{norm(samples[0], m1), norm(samples[1], m1)})
		twoWayO3 = append(twoWayO3, [][]float64{norm(samples[1], m2), norm(samples[2], m2)})
	}

	res.ANOVAO2 = stats.RepeatedMeasuresANOVA(anovaO2)
	res.ANOVAO3 = stats.RepeatedMeasuresANOVA(anovaO3)
	res.TwoWayO2 = stats.TwoWayANOVA(twoWayO2)
	res.TwoWayO3 = stats.TwoWayANOVA(twoWayO3)
	return res, nil
}

// Figure renders the Figure 7 reproduction.
func (r *SpeedupResult) Figure() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: speedup of -O2 over -O1 and -O3 over -O2 under STABILIZER (%d runs)\n", r.Runs)
	fmt.Fprintf(&sb, "%-12s %12s %6s %9s | %12s %6s %9s\n",
		"Benchmark", "O2/O1", "sig", "p", "O3/O2", "sig", "p")
	sigO2, sigO3 := 0, 0
	for _, row := range r.Rows {
		mark := func(sig bool, speedup float64) string {
			s := " "
			if sig {
				s = "S"
			}
			if speedup < 1 {
				s += "*" // the paper's asterisk: optimization slowed the benchmark
			} else {
				s += " "
			}
			return s
		}
		fmt.Fprintf(&sb, "%-12s %12.3f %6s %9.4f | %12.3f %6s %9.4f\n",
			row.Benchmark,
			row.SpeedupO2, mark(row.SignificantO2, row.SpeedupO2), row.PO2,
			row.SpeedupO3, mark(row.SignificantO3, row.SpeedupO3), row.PO3)
		if row.SignificantO2 {
			sigO2++
		}
		if row.SignificantO3 {
			sigO3++
		}
	}
	fmt.Fprintf(&sb, "significant at 95%%: -O2 vs -O1 for %d of %d, -O3 vs -O2 for %d of %d\n",
		sigO2, len(r.Rows), sigO3, len(r.Rows))
	fmt.Fprintf(&sb, "(S = statistically significant, * = slowdown)\n")
	return sb.String()
}

// ANOVATable renders the §6.1 analysis.
func (r *SpeedupResult) ANOVATable() string {
	var sb strings.Builder
	sb.WriteString("ANOVA (one-way, within subjects; subjects = benchmarks)\n")
	report := func(name string, a stats.ANOVAResult) {
		fmt.Fprintf(&sb, "%-12s F(%g, %g) = %-8.3f p = %.4f -> ", name, a.DFTreatment, a.DFError, a.FValue, a.P)
		switch {
		case a.P < 0.05:
			sb.WriteString("significant at 95%\n")
		case a.P < 0.10:
			sb.WriteString("significant at 90% but not 95%\n")
		default:
			sb.WriteString("not significant (indistinguishable from noise)\n")
		}
	}
	report("-O2 vs -O1:", r.ANOVAO2)
	report("-O3 vs -O2:", r.ANOVAO3)
	sb.WriteString("\nVariance partition (two-way with replication, per-benchmark normalized):\n")
	partition := func(name string, a stats.TwoWayANOVAResult) {
		total := a.SSA + a.SSB + a.SSInteraction + a.SSError
		if total == 0 {
			return
		}
		fmt.Fprintf(&sb, "%-12s benchmarks %4.1f%%  treatment %4.1f%% (p=%.3g)  interaction %4.1f%% (p=%.3g)  runs %4.1f%%\n",
			name,
			a.SSA/total*100, a.SSB/total*100, a.PB,
			a.SSInteraction/total*100, a.PInteraction,
			a.SSError/total*100)
	}
	partition("-O2 vs -O1:", r.TwoWayO2)
	partition("-O3 vs -O2:", r.TwoWayO3)
	return sb.String()
}
