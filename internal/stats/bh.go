package stats

import (
	"math"
	"sort"
)

// BenjaminiHochberg returns the Benjamini–Hochberg adjusted p-values for a
// family of tests (step-up false-discovery-rate control, matching R's
// p.adjust(..., "BH")): the i'th sorted p-value is scaled by m/i and the
// results are made monotone from the largest down, capped at 1. Rejecting
// every adjusted p below alpha controls the FDR at alpha across the family —
// the gate compares every benchmark at once, so without the correction a
// 20-benchmark suite would false-alarm on one benchmark per run at α = 0.05.
//
// NaN p-values (tests that could not run) are passed through untouched and
// do not count toward the family size.
func BenjaminiHochberg(ps []float64) []float64 {
	idx := make([]int, 0, len(ps))
	for i, p := range ps {
		if !math.IsNaN(p) {
			idx = append(idx, i)
		}
	}
	m := len(idx)
	adj := make([]float64, len(ps))
	for i, p := range ps {
		adj[i] = p
	}
	if m == 0 {
		return adj
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	running := math.Inf(1)
	for k := m - 1; k >= 0; k-- {
		v := ps[idx[k]] * float64(m) / float64(k+1)
		if v < running {
			running = v
		}
		if running > 1 {
			adj[idx[k]] = 1
		} else {
			adj[idx[k]] = running
		}
	}
	return adj
}
