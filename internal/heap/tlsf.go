package heap

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/trap"
)

// TLSF is a two-level segregated fits allocator (Masmano et al.), the
// paper's optional base allocator. It manages a contiguous pool with
// good-fit free lists indexed by a first level (size magnitude) and second
// level (linear subdivision), with immediate coalescing of physical
// neighbours — constant-time malloc and free with low fragmentation.
type TLSF struct {
	as       *mem.AddressSpace
	poolSize uint64
	pool     mem.Region
	blocks   map[mem.Addr]*tlsfBlock // all blocks by base address
	freed    map[mem.Addr]bool       // released object bases not re-issued
	freeList [tlsfFL][tlsfSL]*tlsfBlock
	flBitmap uint32
	slBitmap [tlsfFL]uint32
}

const (
	tlsfFL      = 30 // first-level buckets: sizes up to 2^30
	tlsfSLShift = 4  // 16 second-level subdivisions
	tlsfSL      = 1 << tlsfSLShift
	tlsfMinSize = 32
)

type tlsfBlock struct {
	addr     mem.Addr
	size     uint64
	free     bool
	physPrev *tlsfBlock // physically previous block (by address)
	physNext *tlsfBlock
	freePrev *tlsfBlock // free-list links
	freeNext *tlsfBlock
	fl, sl   int
}

// NewTLSF returns a TLSF allocator with a pool of poolSize bytes drawn
// from as. The pool is mapped lazily on the first allocation, so creating
// the allocator never faults even under a tight map budget.
func NewTLSF(as *mem.AddressSpace, poolSize uint64) *TLSF {
	return &TLSF{
		as:       as,
		poolSize: poolSize,
		blocks:   make(map[mem.Addr]*tlsfBlock),
		freed:    make(map[mem.Addr]bool),
	}
}

// Name implements Allocator.
func (t *TLSF) Name() string { return "tlsf" }

// mapping computes the (first, second) level indices for a size.
func tlsfMapping(size uint64) (int, int) {
	if size < tlsfMinSize {
		size = tlsfMinSize
	}
	fl := bits.Len64(size) - 1
	sl := int((size >> (uint(fl) - tlsfSLShift)) - tlsfSL)
	if fl >= tlsfFL {
		fl = tlsfFL - 1
		sl = tlsfSL - 1
	}
	return fl, sl
}

func (t *TLSF) insertFree(b *tlsfBlock) {
	fl, sl := tlsfMapping(b.size)
	b.fl, b.sl = fl, sl
	b.free = true
	b.freePrev = nil
	b.freeNext = t.freeList[fl][sl]
	if b.freeNext != nil {
		b.freeNext.freePrev = b
	}
	t.freeList[fl][sl] = b
	t.flBitmap |= 1 << uint(fl)
	t.slBitmap[fl] |= 1 << uint(sl)
}

func (t *TLSF) removeFree(b *tlsfBlock) {
	if b.freePrev != nil {
		b.freePrev.freeNext = b.freeNext
	} else {
		t.freeList[b.fl][b.sl] = b.freeNext
	}
	if b.freeNext != nil {
		b.freeNext.freePrev = b.freePrev
	}
	if t.freeList[b.fl][b.sl] == nil {
		t.slBitmap[b.fl] &^= 1 << uint(b.sl)
		if t.slBitmap[b.fl] == 0 {
			t.flBitmap &^= 1 << uint(b.fl)
		}
	}
	b.free = false
	b.freePrev, b.freeNext = nil, nil
}

// grow maps another region (the pool size or the request, whichever is
// larger) and adds it to the free structures.
func (t *TLSF) grow(size uint64) error {
	g := t.poolSize
	if size > g {
		g = size
	}
	r, err := t.as.Map(g, mem.MapAnywhere)
	if err != nil {
		return err
	}
	if t.pool.Size == 0 {
		t.pool = r
	}
	nb := &tlsfBlock{addr: r.Base, size: r.Size, free: true}
	t.blocks[nb.addr] = nb
	t.insertFree(nb)
	return nil
}

// findSuitable locates a free block of at least size bytes, searching the
// same second-level list and then larger buckets via the bitmaps.
func (t *TLSF) findSuitable(size uint64) *tlsfBlock {
	fl, sl := tlsfMapping(size)
	// Round up within the second level so any block in the list fits.
	slMap := t.slBitmap[fl] & (^uint32(0) << uint(sl))
	if slMap == 0 {
		flMap := t.flBitmap & (^uint32(0) << uint(fl+1))
		if flMap == 0 {
			return nil
		}
		fl = bits.TrailingZeros32(flMap)
		slMap = t.slBitmap[fl]
		if slMap == 0 {
			return nil
		}
	}
	sl = bits.TrailingZeros32(slMap)
	for b := t.freeList[fl][sl]; b != nil; b = b.freeNext {
		if b.size >= size {
			return b
		}
	}
	// The head list can contain blocks slightly smaller than requested at
	// the mapped (fl, sl); fall back to the next larger bucket.
	flMap := t.flBitmap & (^uint32(0) << uint(fl+1))
	if flMap == 0 {
		return nil
	}
	fl = bits.TrailingZeros32(flMap)
	sl = bits.TrailingZeros32(t.slBitmap[fl])
	return t.freeList[fl][sl]
}

// Alloc implements Allocator.
func (t *TLSF) Alloc(size uint64) (mem.Addr, error) {
	size = (size + MinAlign - 1) &^ (MinAlign - 1)
	if size < tlsfMinSize {
		size = tlsfMinSize
	}
	if t.pool.Size == 0 {
		if err := t.grow(size); err != nil {
			return 0, err
		}
	}
	b := t.findSuitable(size)
	if b == nil {
		if err := t.grow(size); err != nil {
			return 0, err
		}
		b = t.findSuitable(size)
		if b == nil {
			return 0, trap.New(trap.OutOfMemory,
				"heap: tlsf could not satisfy a %d-byte allocation after growth", size)
		}
	}
	t.removeFree(b)
	// Split the remainder if it is big enough to be useful.
	if b.size >= size+tlsfMinSize {
		rest := &tlsfBlock{
			addr:     b.addr + mem.Addr(size),
			size:     b.size - size,
			physPrev: b,
			physNext: b.physNext,
		}
		if rest.physNext != nil {
			rest.physNext.physPrev = rest
		}
		b.physNext = rest
		b.size = size
		t.blocks[rest.addr] = rest
		t.insertFree(rest)
	}
	delete(t.freed, b.addr)
	return b.addr, nil
}

// Free implements Allocator, coalescing with free physical neighbours.
func (t *TLSF) Free(addr mem.Addr) error {
	b, ok := t.blocks[addr]
	if !ok || b.free {
		// A coalesced block loses its map entry, so classification relies
		// on the freed set rather than the block state alone.
		return freeTrap(t.freed, addr, "tlsf")
	}
	t.freed[addr] = true
	if next := b.physNext; next != nil && next.free {
		t.removeFree(next)
		delete(t.blocks, next.addr)
		b.size += next.size
		b.physNext = next.physNext
		if b.physNext != nil {
			b.physNext.physPrev = b
		}
	}
	if prev := b.physPrev; prev != nil && prev.free {
		t.removeFree(prev)
		delete(t.blocks, b.addr)
		prev.size += b.size
		prev.physNext = b.physNext
		if prev.physNext != nil {
			prev.physNext.physPrev = prev
		}
		b = prev
	}
	t.insertFree(b)
	return nil
}

// CheckInvariants validates the physical chain and free lists; tests call it
// after randomized workloads.
func (t *TLSF) CheckInvariants() error {
	for addr, b := range t.blocks {
		if b.addr != addr {
			return fmt.Errorf("tlsf: block map key %#x != block addr %#x", uint64(addr), uint64(b.addr))
		}
		if b.physNext != nil {
			if b.physNext.addr != b.addr+mem.Addr(b.size) {
				return fmt.Errorf("tlsf: physical chain gap at %#x", uint64(b.addr))
			}
			if b.physNext.physPrev != b {
				return fmt.Errorf("tlsf: broken physical back link at %#x", uint64(b.addr))
			}
			if b.free && b.physNext.free {
				return fmt.Errorf("tlsf: adjacent free blocks not coalesced at %#x", uint64(b.addr))
			}
		}
	}
	for fl := 0; fl < tlsfFL; fl++ {
		for sl := 0; sl < tlsfSL; sl++ {
			for b := t.freeList[fl][sl]; b != nil; b = b.freeNext {
				if !b.free {
					return fmt.Errorf("tlsf: non-free block %#x on free list", uint64(b.addr))
				}
			}
		}
	}
	return nil
}
