package ir

import (
	"fmt"

	"repro/internal/rng"
)

// GenConfig bounds the random-program generator.
type GenConfig struct {
	MaxFuncs     int // besides main (default 6)
	MaxBlockLen  int // instructions per straight-line burst (default 12)
	MaxLoopIters int64
	MaxGlobals   int
	MaxSlots     int
	MaxDepth     int // nesting depth of loops/ifs (default 3)
	// Faults plants one deterministic heap-misuse fault (double free,
	// out-of-bounds access, use after free, or free of a non-pointer) at
	// the end of main, after all normal behavior. The resulting program
	// traps at a layout-invariant retired-instruction index, which is what
	// the oracle's fault-equivalence fuzzing asserts across the matrix.
	Faults bool
}

func (c *GenConfig) defaults() {
	if c.MaxFuncs == 0 {
		c.MaxFuncs = 6
	}
	if c.MaxBlockLen == 0 {
		c.MaxBlockLen = 12
	}
	if c.MaxLoopIters == 0 {
		c.MaxLoopIters = 12
	}
	if c.MaxGlobals == 0 {
		c.MaxGlobals = 4
	}
	if c.MaxSlots == 0 {
		c.MaxSlots = 3
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
}

// Generate builds a random, valid, terminating module from the seed. The
// output always validates, always terminates (loops have bounded constant
// trip counts, calls form a DAG), never frees memory it does not own, and
// sinks enough values that its checksum exercises the whole program. It is
// the fuzz driver for the compiler-equivalence and layout-invariance tests:
// any pass or runtime that changes a generated program's output is broken.
func Generate(seed uint64, cfg GenConfig) *Module {
	cfg.defaults()
	r := rng.NewMarsaglia(seed)
	g := &irgen{r: r, cfg: cfg, mb: NewModuleBuilder(fmt.Sprintf("gen%d", seed))}

	for i := 0; i < 1+r.Intn(cfg.MaxGlobals); i++ {
		words := 1 + r.Intn(16)
		init := make([]int64, words)
		for w := range init {
			init[w] = int64(r.Next()) - 1<<30
		}
		g.mb.GlobalInit(fmt.Sprintf("g%d", i), init)
		g.globalWords = append(g.globalWords, int64(words))
	}

	// Callee functions first (callable only "downward", so no recursion and
	// guaranteed termination).
	nFuncs := r.Intn(cfg.MaxFuncs + 1)
	for i := 0; i < nFuncs; i++ {
		params := 1 + r.Intn(2)
		fb := g.mb.Func(fmt.Sprintf("f%d", i), params)
		g.buildBody(fb, params, cfg.MaxDepth, i, true, false)
		g.funcs = append(g.funcs, genFunc{index: fb.Index(), params: params})
	}

	// main may not throw (an uncaught exception aborts the run), but its
	// invoke handlers catch whatever the helpers raise.
	main := g.mb.Func("main", 0)
	g.buildBody(main, 0, cfg.MaxDepth, nFuncs, false, cfg.Faults)
	m := g.mb.Module()
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("ir: generator produced invalid module: %v", err))
	}
	return m
}

type genFunc struct {
	index  int32
	params int
}

type irgen struct {
	r           *rng.Marsaglia
	cfg         GenConfig
	mb          *ModuleBuilder
	funcs       []genFunc
	globalWords []int64
}

// buildBody emits a function body: bursts of instructions interleaved with
// nested control flow, ending in a return. callableBelow limits callees to
// functions with smaller indices.
func (g *irgen) buildBody(fb *FuncBuilder, params, depth, callableBelow int, mayThrow, plantFault bool) {
	// Tracked integer values available as operands.
	vals := []Reg{fb.ConstI(int64(g.r.Intn(100) + 1))}
	for p := 0; p < params; p++ {
		vals = append(vals, fb.Param(p))
	}
	// Tracked float values.
	fvals := []Reg{fb.ConstF(1.25)}
	// Live heap pointers, scoped: a loop body or if-branch gets a fresh
	// scope, and only the innermost scope's objects may be freed there.
	// A free emitted inside a loop would execute once per iteration; only
	// objects allocated in the same body are re-allocated each iteration,
	// so only they can be freed safely. Objects allocated in conditional
	// code never escape their scope (their register may be unassigned on
	// the other path). Unfreed inner objects simply leak, which is valid.
	type obj struct {
		ptr   Reg
		words int64
	}
	scopes := []*[]obj{{}}

	nSlots := g.r.Intn(g.cfg.MaxSlots + 1)
	slots := make([]struct {
		idx   int32
		words int64
	}, nSlots)
	for i := range slots {
		slots[i].words = int64(1 + g.r.Intn(8))
		slots[i].idx = fb.Slot(fmt.Sprintf("s%d", i), uint64(slots[i].words*8))
		fb.StoreS(slots[i].idx, 0, NoReg, vals[g.r.Intn(len(vals))])
	}

	pickI := func() Reg { return vals[g.r.Intn(len(vals))] }
	pickF := func() Reg { return fvals[g.r.Intn(len(fvals))] }

	var emitBurst func(depth int)
	emitBurst = func(depth int) {
		n := 1 + g.r.Intn(g.cfg.MaxBlockLen)
		for k := 0; k < n; k++ {
			switch g.r.Intn(21) {
			case 0:
				vals = append(vals, fb.ConstI(int64(g.r.Next())%1000))
			case 1:
				vals = append(vals, fb.Add(pickI(), pickI()))
			case 2:
				vals = append(vals, fb.Sub(pickI(), pickI()))
			case 3:
				vals = append(vals, fb.Mul(pickI(), pickI()))
			case 4:
				vals = append(vals, fb.Div(pickI(), pickI()))
			case 5:
				vals = append(vals, fb.Xor(pickI(), pickI()))
			case 6:
				vals = append(vals, fb.Shr(pickI(), fb.ConstI(int64(g.r.Intn(8)))))
			case 7:
				vals = append(vals, fb.CmpLT(pickI(), pickI()))
			case 8: // global access
				gi := int32(g.r.Intn(len(g.globalWords)))
				off := int64(g.r.Intn(int(g.globalWords[gi]))) * 8
				if g.r.Intn(2) == 0 {
					vals = append(vals, fb.LoadG(gi, off, NoReg))
				} else {
					fb.StoreG(gi, off, NoReg, pickI())
				}
			case 9: // stack access
				if nSlots > 0 {
					s := slots[g.r.Intn(nSlots)]
					off := int64(g.r.Intn(int(s.words))) * 8
					if g.r.Intn(2) == 0 {
						vals = append(vals, fb.LoadS(s.idx, off, NoReg))
					} else {
						fb.StoreS(s.idx, off, NoReg, pickI())
					}
				}
			case 10: // allocate into the innermost scope
				words := int64(1 + g.r.Intn(8))
				p := fb.Alloc(words * 8)
				fb.StoreH(p, 0, NoReg, pickI())
				top := scopes[len(scopes)-1]
				*top = append(*top, obj{ptr: p, words: words})
			case 11: // heap access: any scope's objects are live here
				var all []obj
				for _, sc := range scopes {
					all = append(all, *sc...)
				}
				if len(all) > 0 {
					o := all[g.r.Intn(len(all))]
					off := int64(g.r.Intn(int(o.words))) * 8
					if g.r.Intn(2) == 0 {
						vals = append(vals, fb.LoadH(o.ptr, off, NoReg))
					} else {
						fb.StoreH(o.ptr, off, NoReg, pickI())
					}
				}
			case 12: // free, innermost scope only (no double free, no UAF)
				top := scopes[len(scopes)-1]
				if n := len(*top); n > 0 {
					i := g.r.Intn(n)
					fb.Free((*top)[i].ptr)
					(*top)[i] = (*top)[n-1]
					*top = (*top)[:n-1]
				}
			case 13: // float math
				switch g.r.Intn(4) {
				case 0:
					fvals = append(fvals, fb.FAdd(pickF(), pickF()))
				case 1:
					fvals = append(fvals, fb.FMul(pickF(), pickF()))
				case 2:
					fvals = append(fvals, fb.I2F(pickI()))
				default:
					vals = append(vals, fb.F2I(pickF()))
				}
			case 14: // call someone strictly earlier in the build order
				var callable []genFunc
				for _, f := range g.funcs {
					if int(f.index) < callableBelow {
						callable = append(callable, f)
					}
				}
				if len(callable) > 0 {
					callee := callable[g.r.Intn(len(callable))]
					args := make([]Reg, callee.params)
					for ai := range args {
						args[ai] = pickI()
					}
					if !mayThrow || g.r.Intn(2) == 0 {
						// Invoke form: catch anything the callee throws,
						// observe it, and continue. main always invokes —
						// an exception escaping main aborts the program.
						handler := fb.NewBlock()
						cont := fb.NewBlock()
						res := fb.Invoke(callee.index, handler, args...)
						fb.Jmp(cont)
						fb.SetBlock(handler)
						fb.Sink(res) // the caught exception value
						fb.Jmp(cont)
						fb.SetBlock(cont)
						vals = append(vals, res)
					} else {
						vals = append(vals, fb.Call(callee.index, args...))
					}
				}
			case 15: // sink
				fb.Sink(pickI())
			case 18: // conditional throw (helpers only)
				if mayThrow {
					cond := fb.CmpEQ(fb.And(pickI(), fb.ConstI(7)), fb.ConstI(3))
					thrown := fb.Xor(pickI(), fb.ConstI(0x7fff))
					fb.If(cond, func() { fb.Throw(thrown) }, nil)
				}
			case 16: // if/else, each branch in its own object scope
				if depth > 0 {
					cond := fb.CmpLT(pickI(), pickI())
					inScope := func(body func()) func() {
						return func() {
							scopes = append(scopes, &[]obj{})
							body()
							scopes = scopes[:len(scopes)-1]
						}
					}
					fb.If(cond,
						inScope(func() { emitBurst(depth - 1) }),
						inScope(func() { emitBurst(depth - 1) }))
				}
			case 17: // bounded loop, body in its own object scope
				if depth > 0 {
					iters := 1 + int64(g.r.Intn(int(g.cfg.MaxLoopIters)))
					fb.LoopN(iters, func(i Reg) {
						vals = append(vals, i)
						scopes = append(scopes, &[]obj{})
						emitBurst(depth - 1)
						scopes = scopes[:len(scopes)-1]
					})
				}
			default:
				vals = append(vals, fb.Mov(pickI()))
			}
			// Keep operand pools bounded.
			if len(vals) > 64 {
				vals = vals[len(vals)-32:]
			}
			if len(fvals) > 32 {
				fvals = fvals[len(fvals)-16:]
			}
		}
	}

	emitBurst(depth)
	// Always observe something.
	fb.Sink(pickI())
	// Free outer-scope leftovers so allocators see balanced workloads half
	// the time; the rest leak, which is valid.
	if g.r.Intn(2) == 0 {
		for _, o := range *scopes[0] {
			fb.Free(o.ptr)
		}
	}
	if plantFault {
		g.plantFault(fb)
	}
	fb.Ret(pickI())
}

// plantFault emits one deterministic heap-misuse idiom. Faulting loads are
// sunk so no pass can delete them as dead; the trap therefore fires at the
// same retired-instruction index under every layout.
func (g *irgen) plantFault(fb *FuncBuilder) {
	switch g.r.Intn(4) {
	case 0: // double free
		p := fb.Alloc(32)
		fb.StoreH(p, 0, NoReg, fb.ConstI(1))
		fb.Free(p)
		fb.Free(p)
	case 1: // out-of-bounds load
		p := fb.Alloc(16)
		fb.StoreH(p, 0, NoReg, fb.ConstI(2))
		fb.Sink(fb.LoadH(p, 1024, NoReg))
	case 2: // use after free
		p := fb.Alloc(32)
		fb.StoreH(p, 0, NoReg, fb.ConstI(3))
		fb.Free(p)
		fb.Sink(fb.LoadH(p, 0, NoReg))
	default: // free of a non-pointer value
		fb.Free(fb.ConstI(12345))
	}
}
